//! The cycle-level out-of-order core: fetch → decode/rename/dispatch →
//! wakeup/select → execute → writeback → commit, with configurable issue
//! schedulers (Figure 14), commit policies (Figure 15) and Table 1 sizing.

use crate::config::{exec_latency, is_unpipelined, CommitKind, CoreConfig, Pool};
use crate::crit::CriticalityEngine;
use crate::exec::{Event, EventKind, EventQueue, FuBank};
use crate::fetch::{Fetched, FetchUnit};
use crate::iq::{IqEntry, IssueQueue};
use crate::lsq::{LoadSearch, Lsq};
use crate::rename::RenameUnit;
use crate::rob::{Rob, RobEntry};
use crate::stats::SimStats;
use orinoco_isa::{DynInst, Emulator, InstClass, Opcode};
use orinoco_matrix::{BitVec64, LockdownMatrix, LockdownTable};
use orinoco_mem::{AccessKind, HitLevel, MemorySystem};
use orinoco_stats::{Resource, StallCause};
use orinoco_trace::{TraceEventKind, Tracer, STALL_SEQ};
use std::collections::{HashSet, VecDeque};

/// Number of lockdown-table rows (committed-but-unordered loads tracked
/// for TSO, §3.3).
const LDT_ROWS: usize = 64;

/// One architectural commit, as observed by the commit-trace hook
/// ([`Core::enable_commit_trace`]). Commits may be reported out of program
/// order (that is the point of Orinoco); `seq` restores program order and
/// `oldest_live_seq` records how far ahead of the ROB head the commit ran.
#[derive(Clone, Debug)]
pub struct CommitEvent {
    /// Program-order sequence number of the committed instruction.
    pub seq: u64,
    /// Cycle at which the commit happened.
    pub cycle: u64,
    /// Sequence number of the oldest live ROB entry at commit time
    /// (`None` if this commit emptied the ROB). Equal to `seq` for an
    /// in-order commit; greater depth means an unordered commit.
    pub oldest_live_seq: Option<u64>,
    /// The committed dynamic instruction (from the oracle-driven fetch).
    pub dyn_inst: DynInst,
}

impl CommitEvent {
    /// `true` if this instruction committed while an older instruction
    /// was still live in the ROB (an out-of-order commit).
    #[must_use]
    pub fn out_of_order(&self) -> bool {
        self.oldest_live_seq.is_some_and(|h| h < self.seq)
    }
}

/// A coherence-relevant observation from inside the pipeline, drained each
/// cycle by the multicore `System` (which turns them into directory fills
/// and reads-from resolutions). Only produced when coherence observation
/// is enabled; the single-core paths never allocate for these.
#[derive(Clone, Copy, Debug)]
pub enum CohEvent {
    /// A cache access for `addr` was accepted by the hierarchy (the line
    /// is — or is being — filled locally). Emitted for wrong-path and
    /// squashed loads too: they pollute the caches at access time.
    LineFilled {
        /// Accessed byte address.
        addr: u64,
        /// The access was served by a core-private level (not DRAM).
        private_hit: bool,
    },
    /// A load performed (its data returned). The `System` resolves which
    /// store the load read from: `fwd_seq` when it forwarded locally,
    /// otherwise the coherence directory's latest installed write.
    LoadPerformed {
        /// Sequence number of the load.
        seq: u64,
        /// Loaded byte address.
        addr: u64,
        /// The access that performed it hit a core-private level.
        private_hit: bool,
        /// Local same-word store it forwarded from (store-buffer entries
        /// included), if any.
        fwd_seq: Option<u64>,
        /// The load is on the wrong path (the `System` ignores it for
        /// reads-from purposes).
        wrong_path: bool,
    },
}

/// The simulated core.
pub struct Core {
    cfg: CoreConfig,
    now: u64,
    fetch: FetchUnit,
    /// Fetched instructions waiting to dispatch, with the cycle they
    /// become dispatchable (front-end depth).
    fq: VecDeque<(Fetched, u64)>,
    rename: RenameUnit,
    rob: Rob,
    /// Issue queues: one unified queue, or one per FU pool (§5).
    iqs: Vec<IssueQueue>,
    lsq: Lsq,
    fus: FuBank,
    events: EventQueue,
    mem: MemorySystem,
    /// Post-commit store buffer: `(address, seq)` pairs draining to
    /// memory in program order.
    sb: VecDeque<(u64, u64)>,
    /// Multicore mode: the store buffer drains through the coherence hub
    /// (the `System` pops entries via [`Core::external_drain_commit`])
    /// instead of going straight to the local hierarchy.
    external_drain: bool,
    /// Live fence sequence numbers, maintained only in multicore mode:
    /// a load may not read the cache past an older undrained fence (the
    /// TSO fence→read ordering a single core cannot observe).
    fence_seqs: Vec<u64>,
    /// Coherence observation log ([`Core::enable_coh_log`]), drained by
    /// the `System` each cycle. `None` = single-core mode, zero overhead.
    coh_log: Option<Vec<CohEvent>>,
    /// Withheld invalidation acks released by lockdown lifts, as
    /// `(line byte address, count)` — drained by the `System`.
    released_acks: Vec<(u64, u32)>,
    /// This core's id in a multicore `System` (tags lifecycle traces).
    core_id: Option<u32>,
    crit: Option<CriticalityEngine>,
    /// Lockdown matrix + table for committed loads that passed older
    /// non-performed loads (engaged by the Orinoco commit policy).
    ldm: LockdownMatrix,
    ldt: LockdownTable,
    ldt_free: Vec<usize>,
    ldt_line: Vec<Option<u64>>,
    /// One bit per lockdown-table row, set exactly when `ldt_line[row]`
    /// is `Some` — the per-perform row scan and the squash-time pin scan
    /// walk this mask instead of all `LDT_ROWS` rows. Rows outside the
    /// mask may hold stale matrix bits; `LockdownMatrix::commit_load`
    /// overwrites the whole row at acquisition, so they are never read.
    ldt_live: u64,
    /// One bit per LQ slot holding a load whose `SPEC` bit may still be
    /// set — the candidate set of [`Core::scan_load_safety`]. Safety is
    /// monotone (nothing re-sets a resolved load's `SPEC` bit), so bits
    /// are set at LQ allocation and cleared lazily by the scan itself.
    spec_loads: BitVec64,
    /// Lockdown rows pinned on a *replayed* blocking load: the squash
    /// freed its LQ slot but the load re-executes under the same seq, so
    /// the row must stay held until the re-dispatched instance re-enters
    /// the LQ (re-pinning the new slot) and performs. Entries are
    /// `(ldt row, seq)`.
    pending_reblock: Vec<(usize, u64)>,
    /// Seqs of correct-path loads squashed for replay and not yet
    /// re-dispatched: architecturally live non-performed loads the LQ
    /// cannot see, which the TSO read→write drain gate must still honour.
    limbo_load_seqs: Vec<u64>,
    handled_faults: HashSet<u64>,
    /// Stores whose data register was in flight at issue, as
    /// `(register, ROB index, generation)` triples completed when the
    /// register writes back. A flat vector rather than a map so the
    /// steady-state issue path never allocates; dead entries are pruned
    /// lazily when the vector grows past twice the SQ size.
    store_data_waiters: Vec<(crate::rename::PhysReg, usize, u64)>,
    stats: SimStats,
    committed_count: u64,
    committed_seq_sum: u128,
    /// Commit-event trace consumed by the differential oracle
    /// (`None` = tracing disabled, zero per-commit overhead).
    trace: Option<Vec<CommitEvent>>,
    /// Instruction-lifecycle tracer ([`Core::enable_tracing`]): one event
    /// per pipeline transition plus per-cycle stall attribution, recorded
    /// into a preallocated ring buffer (`None` = disabled; every hook is
    /// a single `Option` check).
    tracer: Option<Box<Tracer>>,
    /// Fault-injection hook: clears the SPEC bit of the n-th speculative
    /// dispatch, emulating a stuck-at/upset fault in the commit matrix's
    /// SPEC column. `None` once fired or never armed.
    chaos_spec_flip: Option<u64>,
    /// Speculative dispatches so far (drives `chaos_spec_flip`).
    spec_dispatched: u64,
    // Reusable per-cycle scratch buffers (DESIGN.md §"Performance
    // engineering"): once they reach their working capacity the
    // steady-state cycle loop performs no heap allocation.
    scratch_grants: Vec<(usize, IqEntry)>,
    scratch_commit: Vec<usize>,
    scratch_squash: Vec<usize>,
    scratch_reinject: Vec<DynInst>,
    scratch_fetch: Vec<Fetched>,
    scratch_used_banks: Vec<bool>,
    scratch_replays: Vec<usize>,
    scratch_older_np: BitVec64,
    /// Candidate LQ slots snapshotted by [`Core::scan_load_safety`] so
    /// the scan can clear `spec_loads` bits while walking them.
    scratch_spec_slots: Vec<usize>,
    /// Wakeup seqs collected from the IQs during a writeback (tracing
    /// only; reused so the traced path stays allocation-free too).
    scratch_woken: Vec<u64>,
    // Per-cycle stall-attribution observations, reset at the top of
    // `step()` and resolved into one `StallCause` at the end of it.
    cyc_committed: usize,
    cyc_dispatch_block: Option<Resource>,
    cyc_ldt_full: bool,
    cyc_ready_before: usize,
    /// No pipeline activity was observed this cycle — no event delivered,
    /// nothing fetched, dispatched, issued, committed or squashed, no
    /// store-buffer traffic, no safety transition. Together with an empty
    /// ready set this is the precondition for idle-cycle fast-forward:
    /// every following cycle is identical until the next scheduled event.
    cyc_quiet: bool,
    /// The cause [`Core::attribute_stall`] recorded for this cycle
    /// (`None` when the cycle committed), reused verbatim when
    /// fast-forward bulk-attributes the skipped cycles.
    cyc_stall_cause: Option<StallCause>,
}

/// Warmed microarchitectural state carried across [`Core::reset_warm`]:
/// the memory hierarchy's cache/prefetcher contents and the frontend's
/// trained predictors. Captured by [`Core::save_warm_state`]; used by the
/// interval sampler to keep long-lived training alive between detailed
/// samples.
#[derive(Clone, Debug)]
pub struct WarmState {
    mem: MemorySystem,
    frontend: crate::fetch::FrontendWarm,
    /// `Emulator::addr_mask` of the source program — lets the pollution
    /// model below draw canonical data addresses without a fetch source.
    addr_mask: u64,
    /// xorshift state for the wrong-path pollution model (same generator
    /// family as `FetchUnit::synth_wrong_path`).
    rng: u64,
    /// Fixed wrong-path episode length override; `None` (the default)
    /// scales the episode with the mispredicted branch's resolution
    /// slack. See [`WarmState::set_wrong_path_depth`].
    wp_depth: Option<u32>,
    /// Instructions fed through [`WarmState::warm_step`] so far — the
    /// pseudo-clock the dependence-readiness model below counts in.
    inst_count: u64,
    /// Approximate pseudo-cycle at which each architectural register's
    /// value becomes available: loads set their destination by serving
    /// cache level, other producers propagate the max of their sources.
    /// Serially dependent chains (pointer chasing) accumulate naturally.
    reg_ready: [u64; orinoco_isa::NUM_ARCH_REGS],
}

/// Value-readiness latencies (in pseudo-cycles) assumed for a load
/// served by L1/L2/LLC/DRAM respectively — roughly the detailed
/// hierarchy's latencies.
const WARM_LOAD_LAT: [u64; 4] = [1, 20, 40, 100];

/// Wrong-path episode model: a mispredicted branch keeps wrong-path
/// fetch alive until it resolves, and the frontend fetches
/// [`WARM_WP_FETCH_PER_CYCLE`] instructions per cycle of resolution
/// slack, so the synthetic episode is `BASE + slack` instructions
/// (capped at the level the detailed core's own ROB/IQ backpressure
/// enforces). `slack` is near zero for a branch fed from registers or an
/// L1 hit and ~[`WARM_LOAD_LAT`] for one fed by an in-flight miss;
/// chained misses (pointer chasing) accumulate.
const WARM_WP_BASE: u64 = 12;
const WARM_WP_FETCH_PER_CYCLE: u64 = 1;
const WARM_WP_CAP: u64 = 200;

impl WarmState {
    /// Functionally warms the snapshot with one executed instruction:
    /// memory accesses walk and fill the cache tag arrays (and train the
    /// prefetcher), control flow trains the direction predictor, BTB and
    /// RAS. Sampled simulation feeds every fast-forwarded instruction
    /// through this so warm state tracks the full-run trajectory instead
    /// of going stale across the gap (SMARTS-style functional warming).
    ///
    /// When the warm predictor state mispredicts a branch — the detailed
    /// core would have entered wrong-path fetch here — the synthetic
    /// wrong-path load pollution `FetchUnit::synth_wrong_path` injects is
    /// emulated too: an episode of synthetic instructions, 25% of them
    /// loads at uniformly random canonical addresses, walks the warm
    /// cache hierarchy. The episode length scales with the mispredicted
    /// branch's resolution slack (a branch fed by an in-flight miss keeps
    /// wrong-path fetch alive for its whole latency). Without this the
    /// warm image is systematically colder than a detailed run's — on
    /// branchy workloads the scatter from wrong-path loads keeps most of
    /// the data footprint LLC-resident, and losing it reads 15–20% slow.
    pub fn warm_step(&mut self, d: &orinoco_isa::DynInst) {
        self.inst_count += 1;
        let now = self.inst_count;
        let ready = |r: Option<orinoco_isa::ArchReg>, regs: &[u64]| {
            r.map_or(0, |r| regs[r.index()])
        };
        let dep = ready(d.src1, &self.reg_ready)
            .max(ready(d.src2, &self.reg_ready))
            .max(now);
        let level = d.mem_addr.map(|addr| self.mem.warm_access(addr));
        if let Some(dst) = d.dst {
            if dst.index() != 0 {
                let lat = match level {
                    Some(l) if d.class == orinoco_isa::InstClass::Load => {
                        WARM_LOAD_LAT[l as usize]
                    }
                    _ => 1,
                };
                self.reg_ready[dst.index()] = dep + lat;
            }
        }
        if self.frontend.warm_update(d) {
            let slack = dep - now;
            let depth = self.wp_depth.map_or_else(
                || (WARM_WP_BASE + WARM_WP_FETCH_PER_CYCLE * slack).min(WARM_WP_CAP),
                u64::from,
            );
            for _ in 0..depth {
                let mut x = self.rng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng = x;
                let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
                if r % 100 < 25 {
                    self.mem.warm_access((r >> 13) & self.addr_mask);
                }
            }
        }
    }

    /// Replaces the adaptive wrong-path episode model with a fixed
    /// episode length (synthetic instructions per misprediction); `0`
    /// disables pollution emulation entirely.
    pub fn set_wrong_path_depth(&mut self, depth: u32) {
        self.wp_depth = Some(depth);
    }

    /// The warm memory image — for residency inspection via
    /// [`MemorySystem::probe`] (verification and diagnostics).
    #[must_use]
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Replaces this image's memory half with `other`'s (ablation tool:
    /// isolate whether an accuracy gap comes from the cache image or the
    /// predictor image).
    pub fn adopt_mem(&mut self, other: &WarmState) {
        self.mem = other.mem.clone();
    }

    /// Replaces this image's frontend half with `other`'s (see
    /// [`WarmState::adopt_mem`]).
    pub fn adopt_frontend(&mut self, other: &WarmState) {
        self.frontend = other.frontend.clone();
    }
}

impl Core {
    /// Builds a core over the given instruction source: an emulator
    /// (program + data already initialised) or a [`ReplayStream`] of a
    /// captured run (trace-driven frontend).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(src: impl Into<crate::fetch::FetchSource>, cfg: CoreConfig) -> Self {
        cfg.validate();
        let crit = cfg
            .scheduler
            .uses_criticality()
            .then(CriticalityEngine::new);
        let mut rob = Rob::new(cfg.rob_entries);
        // Only the Orinoco grant scan pops the completion heap; leave the
        // feed off under policies that would let it grow without bound.
        rob.set_completion_heap_tracking(cfg.commit == CommitKind::Orinoco);
        Self {
            fetch: FetchUnit::new(src, &cfg),
            fq: VecDeque::new(),
            rename: RenameUnit::new(cfg.phys_regs),
            rob,
            iqs: if cfg.split_iq {
                cfg.split_iq_capacities()
                    .into_iter()
                    .map(|cap| IssueQueue::new(cfg.scheduler, cap).with_regs(cfg.phys_regs))
                    .collect()
            } else {
                vec![IssueQueue::new(cfg.scheduler, cfg.iq_entries).with_regs(cfg.phys_regs)]
            },
            lsq: Lsq::new(cfg.lq_entries, cfg.sq_entries),
            fus: FuBank::new(cfg.fu),
            events: EventQueue::new(),
            mem: MemorySystem::new(cfg.mem),
            sb: VecDeque::new(),
            external_drain: false,
            fence_seqs: Vec::new(),
            coh_log: None,
            released_acks: Vec::new(),
            core_id: None,
            crit,
            ldm: LockdownMatrix::new(LDT_ROWS, cfg.lq_entries),
            ldt: LockdownTable::new(),
            ldt_free: (0..LDT_ROWS).rev().collect(),
            ldt_line: vec![None; LDT_ROWS],
            ldt_live: 0,
            spec_loads: BitVec64::new(cfg.lq_entries),
            pending_reblock: Vec::new(),
            limbo_load_seqs: Vec::new(),
            handled_faults: HashSet::new(),
            store_data_waiters: Vec::new(),
            stats: SimStats::default(),
            committed_count: 0,
            committed_seq_sum: 0,
            trace: None,
            tracer: None,
            chaos_spec_flip: None,
            spec_dispatched: 0,
            scratch_grants: Vec::new(),
            scratch_commit: Vec::new(),
            scratch_squash: Vec::new(),
            scratch_reinject: Vec::new(),
            scratch_fetch: Vec::new(),
            scratch_used_banks: Vec::new(),
            scratch_replays: Vec::new(),
            scratch_older_np: BitVec64::new(cfg.lq_entries),
            scratch_spec_slots: Vec::with_capacity(cfg.lq_entries),
            scratch_woken: Vec::new(),
            cyc_committed: 0,
            cyc_dispatch_block: None,
            cyc_ldt_full: false,
            cyc_ready_before: 0,
            cyc_quiet: true,
            cyc_stall_cause: None,
            now: 0,
            cfg,
        }
    }

    /// Rewinds the core to its just-constructed state over a fresh
    /// emulator, reusing every internal allocation (benchmark harnesses
    /// re-run programs without paying construction or allocation cost).
    /// Behaviourally equivalent to `Core::new(emu, cfg)` with the same
    /// configuration: every architectural and microarchitectural
    /// structure — including free-list pop order, RNG seeds and predictor
    /// state — is restored to pristine, so a run after `reset` is
    /// byte-identical to a run on a freshly built core. Commit tracing
    /// and lifecycle tracing stay enabled (their buffers are cleared);
    /// an armed fault injector is disarmed. Accepts any instruction source
    /// ([`Core::new`]): an emulator or a captured-trace replay.
    pub fn reset(&mut self, src: impl Into<crate::fetch::FetchSource>) {
        self.reset_inner(src.into());
    }

    /// Like [`Core::reset`], but under a new configuration that may carry
    /// a different RNG `seed`. Everything else must match
    /// ([`CoreConfig::same_shape`]): the sized structures are reused as
    /// they are, and `reset` re-derives every seeded state (wrong-path
    /// RNG, predictors) from the new configuration. Behaviourally
    /// equivalent to `Core::new(emu, cfg)`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is not same-shape with the core's configuration.
    pub fn reset_with(&mut self, emu: Emulator, cfg: CoreConfig) {
        assert!(
            self.cfg.same_shape(&cfg),
            "reset_with requires a same-shape configuration (have {}, got {})",
            self.cfg.name,
            cfg.name,
        );
        self.cfg = cfg;
        self.reset_inner(emu.into());
    }

    /// Snapshots the *warm* microarchitectural state — cache contents,
    /// prefetcher training, direction predictor, BTB and RAS — for reuse
    /// across a [`Core::reset_warm`]. Pipeline-transient structures (ROB,
    /// IQs, LSQ, matrices, rename tables) are deliberately excluded: they
    /// are empty at any interval boundary and refill within a few hundred
    /// instructions of detailed warmup, whereas caches and predictors take
    /// millions — exactly the long-lived state interval sampling must not
    /// lose between samples.
    #[must_use]
    pub fn save_warm_state(&self) -> WarmState {
        WarmState {
            mem: self.mem.warm_snapshot(),
            frontend: self.fetch.warm_snapshot(),
            addr_mask: self.fetch.source().canonical_addr(u64::MAX),
            rng: 0x005E_ED0F_0913_C0DE | 1,
            wp_depth: None,
            inst_count: 0,
            reg_ready: [0; orinoco_isa::NUM_ARCH_REGS],
        }
    }

    /// [`Core::reset`] followed by reinstating a warm-state snapshot:
    /// the run starts architecturally fresh (empty pipeline, zeroed
    /// statistics, cycle 0) but with warmed caches and predictors.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken under a different memory
    /// configuration.
    pub fn reset_warm(&mut self, src: impl Into<crate::fetch::FetchSource>, warm: &WarmState) {
        self.reset_inner(src.into());
        self.apply_warm_state(warm);
    }

    /// Reinstates a warm-state snapshot onto an already-reset core — the
    /// second half of [`Core::reset_warm`], split out for handout paths
    /// ([`crate::fleet::Fleet::with_lane`]) where the lane load has
    /// already performed the reset. Calling this on a core that has run
    /// cycles since its last reset leaves pipeline-transient state
    /// inconsistent with the warmed image; only call it reset-fresh.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken under a different memory
    /// configuration.
    pub fn apply_warm_state(&mut self, warm: &WarmState) {
        self.mem.restore_warm(&warm.mem);
        self.fetch.restore_warm(&warm.frontend);
    }

    fn reset_inner(&mut self, src: crate::fetch::FetchSource) {
        self.now = 0;
        self.fetch.reset(src, &self.cfg);
        self.fq.clear();
        self.rename.reset();
        self.rob.reset();
        for iq in &mut self.iqs {
            iq.reset();
        }
        self.lsq.reset();
        self.fus.reset();
        self.events.clear();
        self.mem.reset();
        self.sb.clear();
        // `external_drain`, `core_id` and the presence of the coherence
        // log are *modes*, not run state: they survive a reset like the
        // tracers do, with their buffers cleared.
        self.fence_seqs.clear();
        if let Some(log) = self.coh_log.as_mut() {
            log.clear();
        }
        self.released_acks.clear();
        if let Some(ce) = self.crit.as_mut() {
            ce.reset();
        }
        self.ldm.clear();
        self.ldt.clear();
        self.ldt_free.clear();
        self.ldt_free.extend((0..LDT_ROWS).rev());
        self.ldt_line.fill(None);
        self.ldt_live = 0;
        self.spec_loads.clear_all();
        self.pending_reblock.clear();
        self.limbo_load_seqs.clear();
        self.handled_faults.clear();
        self.store_data_waiters.clear();
        self.stats.reset();
        self.committed_count = 0;
        self.committed_seq_sum = 0;
        if let Some(t) = self.trace.as_mut() {
            t.clear();
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            t.clear();
        }
        self.chaos_spec_flip = None;
        self.spec_dispatched = 0;
        self.cyc_committed = 0;
        self.cyc_dispatch_block = None;
        self.cyc_ldt_full = false;
        self.cyc_ready_before = 0;
        self.cyc_quiet = true;
        self.cyc_stall_cause = None;
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Statistics so far (finalised by [`Core::run`]).
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Live memory-hierarchy counters (valid mid-run, unlike
    /// [`SimStats::mem`] which is snapshotted by [`Core::finalize_run_stats`]).
    #[must_use]
    pub fn mem_stats(&self) -> &orinoco_mem::MemStats {
        self.mem.stats()
    }

    /// Live front-end counters (valid mid-run, unlike [`SimStats::fetch`]).
    #[must_use]
    pub fn fetch_stats(&self) -> &crate::fetch::FetchStats {
        self.fetch.stats()
    }

    /// `true` when the program has fully drained through the pipeline.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.fetch.drained()
            && self.fq.is_empty()
            && self.rob.is_empty()
            && self.events.is_empty()
            && self.sb.is_empty()
    }

    /// Runs until the program drains or `max_cycles` elapse, returning the
    /// finalised statistics by reference (clone them if the core is about
    /// to be dropped or run again).
    ///
    /// # Panics
    ///
    /// Panics on a deadlocked pipeline (no forward progress within
    /// `max_cycles`) or on architectural bookkeeping divergence — every
    /// correct-path instruction must commit exactly once.
    pub fn run(&mut self, max_cycles: u64) -> &SimStats {
        let finished = self.run_until(max_cycles);
        assert!(
            finished,
            "deadlock or overrun at cycle {} (committed {}, ROB {}, IQ {}, fq {})",
            self.now,
            self.stats.committed,
            self.rob.len(),
            self.iq_len_total(),
            self.fq.len(),
        );
        &self.stats
    }

    /// Runs until the program drains or the clock reaches the **absolute**
    /// cycle count `limit`, whichever comes first, and returns whether the
    /// program finished. Statistics are finalised exactly once, when the
    /// run completes.
    ///
    /// Resumable: a sequence of `run_until` calls with increasing limits
    /// is observationally identical to one [`Core::run`] — the idle-cycle
    /// fast-forward clamps its skip at `limit` and simply continues on the
    /// next call (skipped and stepped frozen cycles are accounted
    /// identically; the `verif ffeq` campaign is the proof). This is the
    /// slice primitive [`crate::Fleet`] interleaves many cores with.
    ///
    /// # Panics
    ///
    /// Panics on architectural bookkeeping divergence when the program
    /// finishes within `limit`.
    pub fn run_until(&mut self, limit: u64) -> bool {
        while !self.finished() {
            if self.now >= limit {
                return false;
            }
            self.step();
            if self.cfg.fast_forward {
                self.fast_forward_skip(limit);
            }
        }
        self.finalize_run_stats();
        true
    }

    /// Runs until at least `target` instructions have committed, the
    /// program drains, or the clock reaches the absolute cycle `limit` —
    /// whichever comes first — and returns whether the commit target was
    /// reached. The pipeline is left mid-flight when the target cuts the
    /// run short (fetch ahead of commit, instructions in the ROB): that is
    /// the measurement-window primitive of SMARTS-style interval sampling,
    /// where a window ends while the machine keeps running and the core is
    /// subsequently reset rather than drained.
    ///
    /// Live counters ([`Core::cycle`], `stats().committed`,
    /// `stats().stall_taxonomy`) are valid at return; the end-of-run
    /// snapshot fields of [`SimStats`] are only finalised if the program
    /// actually finished.
    pub fn run_to_commit(&mut self, target: u64, limit: u64) -> bool {
        while !self.finished() {
            if self.stats.committed >= target {
                return true;
            }
            if self.now >= limit {
                return false;
            }
            self.step();
            if self.cfg.fast_forward {
                self.fast_forward_skip(limit);
            }
        }
        self.finalize_run_stats();
        self.stats.committed >= target
    }

    /// Checks the end-of-run architectural invariants and finalises the
    /// statistics snapshot. [`Core::run`] calls this itself; the multicore
    /// `System`, which steps cores directly, calls it once per core when
    /// that core drains.
    ///
    /// # Panics
    ///
    /// Panics on architectural bookkeeping divergence — every correct-path
    /// instruction must commit exactly once.
    pub fn finalize_run_stats(&mut self) {
        // Every correct-path instruction committed exactly once.
        let n = self.fetch.source().executed();
        assert_eq!(self.committed_count, n, "commit count diverged");
        let want: u128 = (n as u128) * (n as u128 - 1) / 2;
        assert_eq!(self.committed_seq_sum, want, "commit sequence checksum diverged");
        self.stats.fetch = *self.fetch.stats();
        self.stats.mem = *self.mem.stats();
        self.stats.cycles = self.now;
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.cyc_committed = 0;
        self.cyc_dispatch_block = None;
        self.cyc_ldt_full = false;
        self.cyc_ready_before = 0;
        self.cyc_quiet = true;
        self.cyc_stall_cause = None;
        self.drain_store_buffer();
        self.process_events();
        self.commit();
        self.issue();
        self.dispatch();
        self.fetch_stage();
        self.attribute_stall();
        self.stats.rob_occ_sum += self.rob.len() as u64;
        self.stats.iq_occ_sum += self.iq_len_total() as u64;
        self.now += 1;
    }

    /// Read access to the oracle emulator driving fetch. After the
    /// pipeline drains, this holds the final architectural state the
    /// pipeline committed — the object a differential checker compares
    /// against an independently-run golden model.
    ///
    /// # Panics
    ///
    /// Panics under a trace-replay frontend (a capture carries no
    /// architectural state); use [`Core::source`] there.
    #[must_use]
    pub fn emulator(&self) -> &Emulator {
        self.fetch.emulator()
    }

    /// Read access to the instruction source driving fetch (live emulator
    /// or captured-trace replay).
    #[must_use]
    pub fn source(&self) -> &crate::fetch::FetchSource {
        self.fetch.source()
    }

    /// Turns on the commit-event trace: every subsequent architectural
    /// commit is appended to an internal buffer drained with
    /// [`Core::drain_commit_trace`]. Used by the lockstep differential
    /// oracle in `orinoco-verif`.
    pub fn enable_commit_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Removes and returns the commit events recorded since the last
    /// drain (empty if tracing is disabled or nothing committed).
    pub fn drain_commit_trace(&mut self) -> Vec<CommitEvent> {
        match self.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Turns on the instruction-lifecycle tracer with a ring buffer of
    /// `capacity` records (the one allocation tracing ever performs).
    /// Every subsequent pipeline transition — fetch, rename, dispatch,
    /// wakeup, issue (with grant rank), execute, complete,
    /// commit-eligible, commit, squash — and every zero-commit cycle's
    /// stall attribution is recorded; once the ring fills, the oldest
    /// events are overwritten.
    pub fn enable_tracing(&mut self, capacity: usize) {
        let mut t = Box::new(Tracer::new(capacity));
        if let Some(id) = self.core_id {
            t.set_core_id(id);
        }
        self.tracer = Some(t);
    }

    /// The lifecycle tracer, if enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Detaches and returns the lifecycle tracer (tracing stops).
    pub fn take_tracer(&mut self) -> Option<Box<Tracer>> {
        self.tracer.take()
    }

    /// Arms the commit-matrix fault injector: the `nth` (1-based)
    /// speculative dispatch has its SPEC bit cleared immediately,
    /// emulating a flipped bit in the commit scheduler's SPEC column.
    /// The differential oracle must catch the resulting misbehaviour
    /// (wrong-path or premature commits); used to prove the oracle is
    /// actually load-bearing.
    pub fn inject_spec_flip(&mut self, nth: u64) {
        assert!(nth > 0, "speculative dispatches are counted from 1");
        self.chaos_spec_flip = Some(nth);
    }

    /// `true` once an armed [`Core::inject_spec_flip`] has fired.
    #[must_use]
    pub fn spec_flip_fired(&self) -> bool {
        self.chaos_spec_flip.is_none() && self.spec_dispatched > 0
    }

    /// Naive O(n²) cross-check of the unordered-commit invariants,
    /// independent of the matrix logic (integration tests): every entry
    /// the commit scheduler currently grants must have **no older live
    /// speculative instruction**, and the ROB's order bookkeeping must be
    /// self-consistent.
    ///
    /// # Panics
    ///
    /// Panics if any granted entry has an older live entry that is still
    /// possibly-excepting/misspeculating, or the order state is corrupt.
    #[doc(hidden)]
    pub fn debug_verify_commit_invariants(&self) {
        // The matrix-backed cross-checks need the lazily-dispatched age
        // matrix, which only debug builds maintain; the seq/SPEC-based
        // O(n²) invariant below stays live in release oracle runs.
        #[cfg(debug_assertions)]
        {
            self.rob.assert_order_consistent();
            assert_eq!(
                self.rob.grants_orinoco_depth(self.cfg.commit_width, self.cfg.commit_depth),
                self.rob.grants_orinoco_matrix(self.cfg.commit_width, self.cfg.commit_depth),
                "walk-based commit grants diverged from the matrix scan",
            );
        }
        let live = self.rob.in_order(self.rob.capacity());
        for idx in self.rob.grants_orinoco(usize::MAX) {
            let g = self.rob.entry(idx);
            assert!(g.completed, "granted entry seq {} not completed", g.seq);
            assert!(!g.wrong_path, "granted entry seq {} is wrong-path", g.seq);
            for &o in &live {
                let oe = self.rob.entry(o);
                assert!(
                    oe.seq >= g.seq || self.rob.is_safe_self(o),
                    "seq {} granted commit while older seq {} is unresolved",
                    g.seq,
                    oe.seq,
                );
            }
        }
    }

    /// Debug probe: the head instruction's `(class, completed, safe_self,
    /// issued)` state, for bottleneck analysis in the harness.
    #[doc(hidden)]
    pub fn debug_head_state(&mut self) -> Option<(InstClass, bool, bool, bool)> {
        let h = self.rob.head()?;
        let e = self.rob.entry(h);
        Some((e.class, e.completed, self.rob.is_safe_self(h), e.issued))
    }

    /// Debug probe: number of ROB entries that currently satisfy every
    /// out-of-order commit condition.
    #[doc(hidden)]
    pub fn debug_committable(&self) -> usize {
        self.rob.grants_orinoco(usize::MAX).len()
    }

    /// Injects a remote coherence invalidation for `addr` (the multicore
    /// TSO harness of §3.3): the line is invalidated in the local
    /// hierarchy, and the acknowledgement is returned `true` if it can be
    /// sent immediately or `false` if an active lockdown withholds it —
    /// in which case it is sent automatically when the lockdown lifts, so
    /// no other core can ever observe a committed load's reordering.
    pub fn inject_invalidation(&mut self, addr: u64) -> bool {
        let line = addr / 64;
        let ack_now = self.ldt.incoming_invalidation(line);
        self.mem.invalidate(addr);
        ack_now
    }

    /// Number of currently active lockdowns (committed loads still waiting
    /// for older loads to perform).
    #[must_use]
    pub fn active_lockdowns(&self) -> usize {
        self.ldt.active()
    }

    /// A currently locked-down line address, if any (harness/testing: lets
    /// a simulated remote core aim an invalidation at a line that is
    /// actually protected).
    #[must_use]
    pub fn any_locked_line(&self) -> Option<u64> {
        self.ldt_line.iter().flatten().next().map(|&l| l * 64)
    }

    /// All currently locked-down line addresses, sorted (lockdown
    /// observability for the TSO litmus harness).
    #[must_use]
    pub fn locked_lines(&self) -> Vec<u64> {
        self.ldt.locked_lines().into_iter().map(|l| l * 64).collect()
    }

    // ------------------------------------------------------------------
    // Multicore (`System`) hooks
    // ------------------------------------------------------------------

    /// Delivers a remote coherence invalidation from the `System`'s
    /// directory: invalidate locally (like [`Core::inject_invalidation`]),
    /// then check whether the invalidation makes a committed-early load's
    /// value stale — a performed, uncommitted, correct-path load to the
    /// invalidated line with an older non-performed load still in flight
    /// must replay, because its (already read) value may now violate TSO
    /// once the remote store installs. Returns `true` when the ack can go
    /// out immediately, `false` when an active lockdown withholds it.
    pub fn apply_remote_invalidation(&mut self, addr: u64) -> bool {
        let ack_now = self.inject_invalidation(addr);
        let line = addr / 64;
        let mut victim: Option<(usize, u64)> = None;
        for slot in 0..self.cfg.lq_entries {
            let Some(l) = self.lsq.load(slot) else { continue };
            // Performed loads may hold a now-stale value; non-performed
            // loads with a resolved address may have a *fill in flight*
            // that started before this invalidation — it would complete
            // with the old copy after the directory already dropped this
            // core as a sharer, so no further invalidation would ever
            // reach it. Both must replay (the re-issued access starts
            // after the invalidation and re-registers the sharer).
            // Forwarded loads read the core's own store — TSO's one
            // legal W→R relaxation — and are immune.
            if l.addr.is_none_or(|a| a / 64 != line) || l.fwd_seq.is_some() {
                continue;
            }
            let Some(e) = self.rob.get(l.rob_idx) else { continue };
            if e.wrong_path || e.lq_slot != Some(slot) {
                continue;
            }
            self.lsq
                .older_nonperformed_loads_into(l.seq, &mut self.scratch_older_np);
            if self.scratch_older_np.is_zero() {
                continue; // ordered: its value is architecturally final
            }
            if victim.is_none_or(|(_, s)| l.seq < s) {
                victim = Some((l.rob_idx, l.seq));
            }
        }
        if let Some((idx, _)) = victim {
            self.replay_from(idx);
        }
        ack_now
    }

    /// Switches the store buffer to external draining: committed stores
    /// stay queued until the `System` pops them through the coherence
    /// directory ([`Core::external_drain_commit`]). Also engages the
    /// multicore-only TSO orderings a single core cannot observe (the
    /// read→write drain gate and the fence→read gate).
    pub fn set_external_drain(&mut self, on: bool) {
        self.external_drain = on;
    }

    /// The store buffer's head entry, `(address, seq)`, if any.
    #[must_use]
    pub fn sb_head(&self) -> Option<(u64, u64)> {
        self.sb.front().copied()
    }

    /// Store-buffer occupancy.
    #[must_use]
    pub fn sb_len(&self) -> usize {
        self.sb.len()
    }

    /// TSO read→write drain gate: the store at the SB head may only make
    /// its write globally visible once every older load has performed.
    /// (Unordered commit lets the store *commit* earlier than that; the
    /// single-core hierarchy cannot tell, but a remote reader could.)
    #[must_use]
    pub fn store_drain_allowed(&self, seq: u64) -> bool {
        // Replayed loads in the refetch gap (`limbo_load_seqs`) are
        // architecturally live and non-performed even though the LQ has
        // no entry for them — a committed store draining past one would
        // become visible before a program-order-earlier load reads.
        self.lsq.oldest_nonperformed_load().is_none_or(|o| o > seq)
            && self.limbo_load_seqs.iter().all(|&s| s > seq)
    }

    /// Drains the SB head into the local hierarchy (the `System` calls
    /// this when the directory grants the write, or directly for private
    /// addresses). Returns `false` if the SB is empty or the hierarchy
    /// rejected the access this cycle (MSHRs full).
    pub fn external_drain_commit(&mut self) -> bool {
        let Some(&(addr, _)) = self.sb.front() else {
            return false;
        };
        if self.mem.access(addr, AccessKind::Store, self.now).is_some() {
            self.sb.pop_front();
            true
        } else {
            false
        }
    }

    /// Turns on the coherence observation log drained by
    /// [`Core::drain_coh_events`].
    pub fn enable_coh_log(&mut self) {
        if self.coh_log.is_none() {
            self.coh_log = Some(Vec::new());
        }
    }

    /// Moves the coherence events observed since the last drain into
    /// `out` (appending). No-op when the log is disabled.
    pub fn drain_coh_events(&mut self, out: &mut Vec<CohEvent>) {
        if let Some(log) = self.coh_log.as_mut() {
            out.append(log);
        }
    }

    /// Moves the `(line address, withheld-ack count)` pairs released by
    /// lockdown lifts since the last drain into `out` (appending).
    pub fn take_released_acks(&mut self, out: &mut Vec<(u64, u32)>) {
        out.append(&mut self.released_acks);
    }

    /// Tags this core's lifecycle trace lines with `"core":id` and
    /// remembers the id for tracers enabled later.
    pub fn set_core_id(&mut self, id: u32) {
        self.core_id = Some(id);
        if let Some(t) = self.tracer.as_deref_mut() {
            t.set_core_id(id);
        }
    }

    /// Jumps the clock from a frozen state to `target`, replicating the
    /// per-cycle accounting exactly like the single-core fast-forward
    /// path. The caller (the `System`) is responsible for having proven
    /// the machine frozen and `target` conservative; `target <= now` is a
    /// no-op.
    pub fn bulk_skip_to(&mut self, target: u64) {
        if target <= self.now {
            return;
        }
        self.skip_frozen_cycles(target - self.now);
        self.now = target;
    }

    /// The issue queue serving `pool` (queue 0 when unified).
    fn iq_index(&self, pool: Pool) -> usize {
        if self.cfg.split_iq {
            pool.idx()
        } else {
            0
        }
    }

    fn iq_len_total(&self) -> usize {
        self.iqs.iter().map(IssueQueue::len).sum()
    }

    // ------------------------------------------------------------------
    // Store buffer
    // ------------------------------------------------------------------

    fn drain_store_buffer(&mut self) {
        if self.external_drain {
            // Multicore mode: the `System` drains the SB through the
            // coherence directory between steps.
            return;
        }
        if let Some(&(addr, _)) = self.sb.front() {
            // Even a rejected attempt touches the memory hierarchy, so a
            // cycle with store-buffer traffic is never quiet.
            self.cyc_quiet = false;
            if self
                .mem
                .access(addr, AccessKind::Store, self.now)
                .is_some()
            {
                self.sb.pop_front();
            }
        }
    }

    // ------------------------------------------------------------------
    // Writeback / resolution events
    // ------------------------------------------------------------------

    fn process_events(&mut self) {
        while let Some(ev) = self.events.pop_due(self.now) {
            self.cyc_quiet = false;
            if !self.rob.is_live(ev.rob_idx, ev.gen) {
                continue; // squashed: stale event
            }
            match ev.kind {
                EventKind::ExecDone => self.on_exec_done(ev.rob_idx),
                EventKind::AguDone => self.on_agu_done(ev.rob_idx),
                EventKind::MemDone => self.on_mem_done(ev.rob_idx),
                EventKind::MemRetry => self.try_load_access(ev.rob_idx),
            }
        }
    }

    fn complete_writeback(&mut self, idx: usize) {
        let dst = self.rob.entry(idx).dst;
        if let Some((_, new, _)) = dst {
            self.rename.writeback(new);
            if self.tracer.is_some() {
                self.scratch_woken.clear();
                for iq in &mut self.iqs {
                    iq.writeback_collect(new, &mut self.scratch_woken);
                }
                if let Some(t) = self.tracer.as_deref_mut() {
                    for &seq in &self.scratch_woken {
                        t.record(self.now, TraceEventKind::Wakeup, seq, u64::from(new.0));
                    }
                }
            } else {
                for iq in &mut self.iqs {
                    iq.writeback(new);
                }
            }
            if !self.store_data_waiters.is_empty() {
                let mut waiters = std::mem::take(&mut self.store_data_waiters);
                waiters.retain(|&(p, st, gen)| {
                    if p != new {
                        return true;
                    }
                    if self.rob.is_live(st, gen) {
                        self.store_data_arrived(st);
                    }
                    false
                });
                self.store_data_waiters = waiters;
            }
        }
        self.rob.mark_completed(idx);
        self.trace_complete(idx);
    }

    /// A waiting store's data operand became available.
    fn store_data_arrived(&mut self, idx: usize) {
        let e = self.rob.entry_mut(idx);
        e.store_data_ready = true;
        if e.agu_done && !e.completed {
            self.rob.mark_completed(idx);
            self.trace_complete(idx);
            if self.rob.entry(idx).retired {
                // A store that left the ROB before its data (VB-style
                // post-commit execution) is done once the data reaches
                // the store buffer.
                self.free_zombie(idx);
            }
        }
    }

    fn on_exec_done(&mut self, idx: usize) {
        self.complete_writeback(idx);
        let e = self.rob.entry(idx);
        let (class, seq, pc, mispredicted, retired) =
            (e.class, e.seq, e.pc, e.mispredicted, e.retired);
        if class == InstClass::Branch {
            if mispredicted {
                if let Some(ce) = self.crit.as_mut() {
                    ce.record_event(pc);
                }
                self.squash_ge(seq + 1, true);
                self.fetch.redirect(seq, self.now, self.cfg.redirect_penalty);
            }
            self.mark_safe_traced(idx);
        }
        if retired {
            self.free_zombie(idx);
        }
    }

    /// A post-commit zombie finished executing: the previous register
    /// mapping only now becomes reclaimable (the VB register-status
    /// imprecision of §2.2), then the physical slot is released.
    fn free_zombie(&mut self, idx: usize) {
        if let Some((_, _, prev)) = self.rob.entry(idx).dst {
            self.rename.commit_remap(prev);
        }
        self.rob.free(idx);
    }

    fn fault_roll(&mut self, seq: u64) -> bool {
        if self.cfg.pagefault_per_million == 0 || self.handled_faults.contains(&seq) {
            return false;
        }
        let h = (seq ^ self.cfg.seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24;
        (h % 1_000_000) < u64::from(self.cfg.pagefault_per_million)
    }

    fn on_agu_done(&mut self, idx: usize) {
        let e = self.rob.entry(idx);
        let (class, seq, wrong_path) = (e.class, e.seq, e.wrong_path);
        let addr = e.mem_addr.expect("memory op without oracle address");
        let fault = !wrong_path && self.fault_roll(seq);
        match class {
            InstClass::Load => {
                let slot = self.rob.entry(idx).lq_slot.expect("load without LQ slot");
                let search = self.lsq.load_agu(slot, addr, !fault);
                if fault {
                    self.rob.entry_mut(idx).fault = true;
                    return; // never completes; trap at head
                }
                self.rob.entry_mut(idx).agu_done = true;
                match search {
                    LoadSearch::Forward { .. } => {
                        self.events.push(Event {
                            at: self.now + 2,
                            kind: EventKind::MemDone,
                            rob_idx: idx,
                            gen: self.rob.generation(idx),
                        });
                    }
                    LoadSearch::Cache => self.try_load_access(idx),
                }
                self.scan_load_safety();
            }
            InstClass::Store => {
                if fault {
                    self.rob.entry_mut(idx).fault = true;
                    return;
                }
                let slot = self.rob.entry(idx).sq_slot.expect("store without SQ slot");
                self.lsq.store_agu_into(slot, addr, &mut self.scratch_replays);
                {
                    let e = self.rob.entry_mut(idx);
                    e.agu_done = true;
                    if e.store_data_ready {
                        self.rob.mark_completed(idx);
                        self.trace_complete(idx);
                    }
                }
                self.mark_safe_traced(idx);
                if self.rob.entry(idx).completed && self.rob.entry(idx).retired {
                    self.free_zombie(idx);
                }
                self.scan_load_safety();
                if self.cfg.commit == CommitKind::Spec {
                    // Cherry oracle: the replay cost is waived entirely —
                    // the conflicting loads are deemed repaired, so their
                    // disambiguation bits clear and they become safe.
                    if !self.scratch_replays.is_empty() {
                        self.lsq.store_forgive(slot);
                        self.scan_load_safety();
                    }
                } else {
                    // Oldest conflicting correct-path load replays.
                    let victim = self
                        .scratch_replays
                        .iter()
                        .copied()
                        .filter(|&r| !self.rob.entry(r).wrong_path)
                        .min_by_key(|&r| self.rob.entry(r).seq);
                    if let Some(v) = victim {
                        self.replay_from(v);
                    }
                }
            }
            _ => unreachable!("AGU event for non-memory class"),
        }
    }

    fn try_load_access(&mut self, idx: usize) {
        let e = self.rob.entry(idx);
        let (addr, pc, wrong_path, seq) =
            (e.mem_addr.expect("load without address"), e.pc, e.wrong_path, e.seq);
        // Multicore TSO fence→read gate: the cache read must wait for
        // every older fence to retire (its drain is externally visible
        // there). Forwarding from the local SQ/SB is never gated — a
        // forwarded value is the core's own and cannot violate TSO.
        if self.external_drain && self.fence_seqs.iter().any(|&f| f < seq) {
            self.events.push(Event {
                at: self.now + 2,
                kind: EventKind::MemRetry,
                rob_idx: idx,
                gen: self.rob.generation(idx),
            });
            return;
        }
        match self.mem.access(addr, AccessKind::Load, self.now) {
            Some(out) => {
                let private_hit = out.level != HitLevel::Dram;
                if let Some(slot) = self.rob.entry(idx).lq_slot {
                    self.lsq.set_load_private_hit(slot, private_hit);
                }
                if let Some(log) = self.coh_log.as_mut() {
                    // Wrong-path accesses pollute the caches too: the
                    // directory must learn about every accepted fill.
                    log.push(CohEvent::LineFilled { addr, private_hit });
                }
                if !wrong_path && matches!(out.level, HitLevel::Llc | HitLevel::Dram) {
                    if let Some(ce) = self.crit.as_mut() {
                        ce.record_event(pc);
                    }
                }
                self.events.push(Event {
                    at: out.complete_at,
                    kind: EventKind::MemDone,
                    rob_idx: idx,
                    gen: self.rob.generation(idx),
                });
            }
            None => {
                // MSHRs full: retry shortly.
                self.events.push(Event {
                    at: self.now + 4,
                    kind: EventKind::MemRetry,
                    rob_idx: idx,
                    gen: self.rob.generation(idx),
                });
            }
        }
    }

    fn on_mem_done(&mut self, idx: usize) {
        let lq_slot = self.rob.entry(idx).lq_slot;
        if let Some(slot) = lq_slot {
            if self.coh_log.is_some() {
                let e = self.rob.entry(idx);
                let (seq, wrong_path) = (e.seq, e.wrong_path);
                let l = self.lsq.load(slot).expect("performing load has an LQ entry");
                let addr = l.addr.expect("performing load has an address");
                let private_hit = l.private_hit;
                let mut fwd = l.fwd_seq;
                if fwd.is_none() {
                    // Committed-but-undrained older stores left the SQ for
                    // the SB; the youngest same-word one still forwards
                    // architecturally (TSO reads its own store buffer).
                    let word = addr & !7;
                    fwd = self
                        .sb
                        .iter()
                        .rev()
                        .find(|&&(a, s)| s < seq && (a & !7) == word)
                        .map(|&(_, s)| s);
                }
                if let Some(log) = self.coh_log.as_mut() {
                    log.push(CohEvent::LoadPerformed {
                        seq,
                        addr,
                        private_hit,
                        fwd_seq: fwd,
                        wrong_path,
                    });
                }
            }
            self.lsq.load_performed(slot);
            self.on_load_no_longer_blocking(slot);
        }
        self.complete_writeback(idx);
        if self.rob.entry(idx).retired {
            self.free_zombie(idx);
        }
    }

    /// A load performed or vanished: clear its lockdown column and release
    /// lockdowns that became ordered.
    fn on_load_no_longer_blocking(&mut self, lq_slot: usize) {
        debug_assert!(
            (0..LDT_ROWS).all(|r| self.ldt_line[r].is_some() == (self.ldt_live >> r & 1 == 1)),
            "ldt_live mask out of sync with ldt_line",
        );
        if self.ldt_live == 0 {
            // No active lockdowns: any bits left in this load's column
            // belong to dead rows, which `commit_load` fully overwrites
            // before the row is ever read again.
            return;
        }
        self.ldm.load_performed_masked(lq_slot, self.ldt_live);
        let mut live = self.ldt_live;
        while live != 0 {
            let row = live.trailing_zeros() as usize;
            live &= live - 1;
            let line = self.ldt_line[row].expect("live mask names an unused row");
            if self.pending_reblock.iter().any(|&(r, _)| r == row) {
                continue; // pinned on a replayed load not yet back in the LQ
            }
            if self.ldm.ordered(row) {
                let withheld = self.ldt.release(line);
                if withheld > 0 && self.external_drain {
                    // The lockdown was holding invalidation acks
                    // hostage; hand them to the `System` to forward.
                    self.released_acks.push((line * 64, withheld));
                }
                self.ldt_line[row] = None;
                self.ldt_live &= !(1 << row);
                self.ldt_free.push(row);
            }
        }
    }

    /// Re-checks every resident load's speculation state after a store
    /// resolves (or a load translates): loads whose disambiguation row
    /// cleared turn non-speculative and drop their `SPEC` bit.
    fn scan_load_safety(&mut self) {
        let mut slots = std::mem::take(&mut self.scratch_spec_slots);
        slots.clear();
        slots.extend(self.spec_loads.iter_ones());
        for &slot in &slots {
            // A candidate leaves the set once nothing can ever mark it
            // safe again: the slot emptied or changed hands, the entry
            // faulted, or the `SPEC` bit already dropped (safety is
            // monotone — no release path re-sets it).
            let keep = 'candidate: {
                let Some(l) = self.lsq.load(slot) else { break 'candidate false };
                let idx = l.rob_idx;
                let Some(e) = self.rob.get(idx) else { break 'candidate false };
                if e.fault || e.lq_slot != Some(slot) {
                    break 'candidate false;
                }
                if self.rob.is_safe_self(idx) {
                    break 'candidate false;
                }
                if self.lsq.load_nonspeculative(slot) {
                    self.mark_safe_traced(idx);
                    break 'candidate false;
                }
                true
            };
            if !keep {
                self.spec_loads.clear(slot);
            }
        }
        self.scratch_spec_slots = slots;
        #[cfg(debug_assertions)]
        for slot in 0..self.cfg.lq_entries {
            if self.spec_loads.get(slot) {
                continue;
            }
            if let Some(l) = self.lsq.load(slot) {
                if let Some(e) = self.rob.get(l.rob_idx) {
                    debug_assert!(
                        e.fault
                            || e.lq_slot != Some(slot)
                            || self.rob.is_safe_self(l.rob_idx),
                        "speculative load missing from the candidate set",
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Trace hooks
    // ------------------------------------------------------------------

    /// Clears the entry's `SPEC` bit through an **architectural
    /// resolution** (branch resolved, store address known, load past
    /// disambiguation, barrier drained) and records the commit-eligible
    /// transition. The chaos fault injector deliberately bypasses this
    /// helper: a flipped SPEC bit has no resolution event, which is
    /// exactly how the trace-invariant harness catches it.
    fn mark_safe_traced(&mut self, idx: usize) {
        if self.rob.is_safe_self(idx) {
            return;
        }
        self.rob.mark_safe(idx);
        self.cyc_quiet = false;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.record(self.now, TraceEventKind::CommitEligible, self.rob.entry(idx).seq, 0);
        }
    }

    /// Records a completion transition (called right after
    /// `rob.mark_completed`).
    fn trace_complete(&mut self, idx: usize) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.record(self.now, TraceEventKind::Complete, self.rob.entry(idx).seq, 0);
        }
    }

    /// End-of-cycle stall attribution: when the cycle committed nothing,
    /// classify why (commit-side reasons take priority over backpressure,
    /// backpressure over issue starvation). The taxonomy counters are
    /// always collected; a per-cycle [`TraceEventKind::Stall`] record is
    /// emitted only when tracing is on.
    fn attribute_stall(&mut self) {
        if self.cyc_committed > 0 {
            return;
        }
        let cause = if !self.rob.is_empty() {
            if self.cyc_ldt_full {
                // An unordered load grant was withheld for want of a
                // lockdown-table row.
                StallCause::LockdownHeld
            } else if let Some(h) = self.rob.head() {
                let e = self.rob.entry(h);
                let (completed, safe) = (e.completed, self.rob.is_safe_self(h));
                if completed && !safe {
                    StallCause::CommitBlockedBySpec
                } else if !completed && self.ldt.active() > 0 {
                    // Inside a lockdown-protected window: committed loads
                    // ran ahead and the machine now waits for the older
                    // loads pinning their lockdowns.
                    StallCause::LockdownHeld
                } else if let Some(r) = self.cyc_dispatch_block {
                    StallCause::from_resource(r)
                } else if self.cyc_ready_before == 0 && self.iq_len_total() > 0 {
                    StallCause::NoReady
                } else {
                    StallCause::ExecPending
                }
            } else {
                StallCause::ExecPending // only post-commit zombies remain
            }
        } else if self.fetch.drained() && self.fq.is_empty() {
            StallCause::ExecPending // post-program drain (SB, zombies)
        } else {
            StallCause::FrontendEmpty
        };
        self.stats.stall_taxonomy.record(cause);
        self.cyc_stall_cause = Some(cause);
        if let Some(t) = self.tracer.as_deref_mut() {
            t.record(self.now, TraceEventKind::Stall, STALL_SEQ, cause.idx() as u64);
        }
    }

    // ------------------------------------------------------------------
    // Idle-cycle fast-forward (DESIGN.md §10)
    // ------------------------------------------------------------------

    /// `true` when the cycle just stepped left the machine provably
    /// frozen: nothing committed, no pipeline activity of any kind was
    /// observed, and no IQ entry is ready to issue. From such a state
    /// every subsequent cycle is identical — same stall attribution, same
    /// (absent) commits, no RNG draws — until an external timer fires: a
    /// scheduled event, the front-end queue maturing, or fetch unstalling.
    fn frozen(&self) -> bool {
        self.cyc_quiet
            && self.cyc_committed == 0
            && self.cyc_stall_cause.is_some()
            && self.iqs.iter().map(IssueQueue::ready_count).sum::<usize>() == 0
            && !self.finished()
    }

    /// The earliest cycle at or after `now` (the cycle about to be
    /// stepped) at which a frozen machine can change state: the next
    /// scheduled exec/memory event, the cycle the oldest
    /// fetched-but-undispatchable instruction matures, the cycle fetch
    /// unstalls, or the next memory-hierarchy completion. A candidate
    /// equal to `now` means the very next cycle already differs, so no
    /// skip happens. `u64::MAX` when nothing is pending (a deadlocked
    /// pipeline).
    fn next_event_cycle(&self) -> u64 {
        let mut next = self.events.next_at().unwrap_or(u64::MAX);
        if let Some(&(_, at)) = self.fq.front() {
            if at >= self.now {
                next = next.min(at);
            }
        }
        if !self.fetch.drained() {
            let su = self.fetch.stalled_until();
            if su >= self.now {
                next = next.min(su);
            }
        }
        if let Some(mc) = self.mem.next_completion_cycle() {
            if mc >= self.now {
                next = next.min(mc);
            }
        }
        next
    }

    /// Jumps the clock from a frozen state to the next event in one step,
    /// replicating per skipped cycle exactly the accounting the naive
    /// cycle loop would have performed: a zero-width commit histogram
    /// sample, the commit-stall counters, the (unchanging) dispatch-block
    /// resource, the stall-taxonomy cause attributed this cycle, one
    /// tracer stall record, and the occupancy sums. With no pending event
    /// the clock runs to `max_cycles` so the deadlock panic in
    /// [`Core::run`] fires at the same cycle with identical state.
    fn fast_forward_skip(&mut self, max_cycles: u64) {
        if !self.frozen() {
            return;
        }
        debug_assert!(self.sb.is_empty(), "quiet cycle with store-buffer traffic");
        debug_assert_eq!(self.cyc_ready_before, 0, "quiet cycle with ready entries");
        let next = self.next_event_cycle().min(max_cycles);
        if next <= self.now {
            return;
        }
        let n = next - self.now;
        self.skip_frozen_cycles(n);
        self.now = next;
    }

    /// Bulk-attributes `n` skipped frozen cycles: exactly the accounting
    /// the naive cycle loop would have performed per cycle — a zero-width
    /// commit histogram sample, the commit-stall counters, the
    /// (unchanging) dispatch-block resource, the stall-taxonomy cause
    /// attributed this cycle, one tracer stall record, and the occupancy
    /// sums. The caller advances `now`.
    fn skip_frozen_cycles(&mut self, n: u64) {
        let cause = self.cyc_stall_cause.expect("frozen cycle carries a stall cause");
        self.stats.commit_width_hist.record_n(0, n);
        // `rob.len()` is the *logical* occupancy (zombies excluded) —
        // this must mirror the naive accounting in `commit`, where
        // `is_empty()` (which counts zombies) would over-attribute.
        let logical_occupancy = self.rob.len();
        if logical_occupancy > 0 {
            self.stats.commit_stall_cycles += n;
            if self.rob.any_grant_orinoco() {
                self.stats.commit_stall_ooo_ready += n;
            }
        }
        if let Some(r) = self.cyc_dispatch_block {
            self.stats.dispatch_stalls.record_n(r, n);
        }
        self.stats.stall_taxonomy.record_n(cause, n);
        if let Some(t) = self.tracer.as_deref_mut() {
            t.record_stall_run(self.now, n, cause.idx() as u64);
        }
        self.stats.rob_occ_sum += self.rob.len() as u64 * n;
        self.stats.iq_occ_sum += self.iq_len_total() as u64 * n;
    }

    /// Debug probe (property tests): whether the cycle just stepped left
    /// the machine frozen, and if so the uncapped next-event cycle the
    /// fast-forward path would jump to (`u64::MAX` = deadlocked).
    #[doc(hidden)]
    #[must_use]
    pub fn debug_frozen_next_event(&self) -> Option<u64> {
        self.frozen().then(|| self.next_event_cycle())
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        // Barrier serialisation: a fence at the head with drained stores
        // becomes safe.
        if let Some(h) = self.rob.head() {
            let e = self.rob.entry(h);
            // A fence at the head has no older stores left in the SQ
            // (they committed before it); it waits only for the store
            // buffer to drain. Requiring the SQ itself to empty would
            // deadlock on the fence's *younger* stores.
            if e.class == InstClass::Barrier
                && e.completed
                && !self.rob.is_safe_self(h)
                && self.sb.is_empty()
            {
                self.mark_safe_traced(h);
            }
        }
        // Orinoco commit already computed the (depth-unlimited) grant set
        // this cycle; a zero-commit cycle leaves the ROB untouched, so
        // the stall statistic below can reuse its emptiness instead of
        // re-scanning. `None` = not known (other policies, or the
        // depth-limited ablation whose grant set is narrower than the
        // statistic's unlimited scan).
        let mut ooo_ready_known: Option<bool> = None;
        let committed = match self.cfg.commit {
            CommitKind::Orinoco => self.commit_orinoco(&mut ooo_ready_known),
            CommitKind::Spec => self.commit_spec_oracle(),
            _ => self.commit_in_order(),
        };
        self.cyc_committed = committed;
        self.stats.commit_width_hist.record(committed as u64);
        // Note: `rob.len()` is the *logical* occupancy (zombies excluded),
        // deliberately not `is_empty()` which also counts zombies.
        let logical_occupancy = self.rob.len();
        if committed == 0 && logical_occupancy > 0 {
            self.stats.commit_stall_cycles += 1;
            let ooo_ready = ooo_ready_known.unwrap_or_else(|| self.rob.any_grant_orinoco());
            debug_assert_eq!(ooo_ready, self.rob.any_grant_orinoco(), "stale grant cache");
            if ooo_ready {
                self.stats.commit_stall_ooo_ready += 1;
            }
            // Precise exception: the oldest instruction holds a fault and
            // nothing can commit.
            if let Some(h) = self.rob.head() {
                if self.rob.entry(h).fault {
                    self.take_exception(h);
                }
            }
        }
    }

    fn commit_orinoco(&mut self, ooo_ready_known: &mut Option<bool>) -> usize {
        let mut grants = std::mem::take(&mut self.scratch_commit);
        self.rob
            .grants_orinoco_depth_hot(self.cfg.commit_width, self.cfg.commit_depth, &mut grants);
        if self.cfg.commit_depth.is_none() {
            // Valid on zero-commit cycles only, which is the only time the
            // caller consults it (commits mutate the ROB underneath).
            *ooo_ready_known = Some(!grants.is_empty());
        }
        let head = self.rob.head();
        let mut committed = 0;
        let mut head_committed = false;
        for &idx in &grants {
            let e = self.rob.entry(idx);
            debug_assert!(!e.wrong_path, "wrong-path instruction granted commit");
            debug_assert!(e.completed, "Orinoco commits completed instructions only");
            let (class, seq, mem_addr) = (e.class, e.seq, e.mem_addr);
            if class == InstClass::Store {
                // Stores leave the SQ in FIFO order and need SB space.
                let head_ok = self.lsq.sq_head_rob_idx() == Some(idx);
                if !head_ok || self.sb.len() >= self.cfg.sq_entries {
                    self.rob.regrant(idx);
                    continue;
                }
            }
            // TSO lockdown: a load committing over older non-performed
            // loads needs a free lockdown-table row.
            if class == InstClass::Load {
                self.lsq
                    .older_nonperformed_loads_into(seq, &mut self.scratch_older_np);
                if !self.scratch_older_np.is_zero() {
                    let Some(row) = self.ldt_free.pop() else {
                        self.cyc_ldt_full = true;
                        self.rob.regrant(idx);
                        continue; // LDT full: retry next cycle
                    };
                    let line = mem_addr.expect("load without address") / 64;
                    self.ldm.commit_load(row, &self.scratch_older_np);
                    self.ldt.acquire(line);
                    self.ldt_line[row] = Some(line);
                    self.ldt_live |= 1 << row;
                }
            }
            if Some(idx) != head && !head_committed {
                self.stats.ooo_commits += 1;
            } else if Some(idx) == head {
                head_committed = true;
            }
            self.retire(idx);
            committed += 1;
        }
        self.scratch_commit = grants;
        committed
    }

    /// Cherry-style oracle (SPEC): completed instructions release their
    /// resources out of order regardless of unresolved speculation, with
    /// zero rollback cost. With `spec_reclaims_rob` unset (Cherry proper,
    /// "SPEC w/o ROB"), ROB entries are only reclaimed in order once the
    /// speculation actually resolves.
    fn commit_spec_oracle(&mut self) -> usize {
        let cw = self.cfg.commit_width;
        // Oldest-first completed candidates, excluding wrong-path and
        // faulting instructions (the oracle knows) and already-released
        // entries.
        let mut candidates = std::mem::take(&mut self.scratch_commit);
        self.rob.in_order_into(self.rob.capacity(), &mut candidates);
        {
            let rob = &self.rob;
            candidates.retain(|&i| {
                let e = rob.entry(i);
                e.completed && !e.wrong_path && !e.fault && !e.released
            });
        }
        candidates.truncate(cw);
        let head = self.rob.head();
        let mut committed = 0;
        let mut head_committed = false;
        for &idx in &candidates {
            let e = self.rob.entry(idx);
            if e.class == InstClass::Store {
                let head_ok = self.lsq.sq_head_rob_idx() == Some(idx);
                if !head_ok || self.sb.len() >= self.cfg.sq_entries {
                    continue;
                }
            }
            if Some(idx) != head && !head_committed {
                self.stats.ooo_commits += 1;
            } else if Some(idx) == head {
                head_committed = true;
            }
            if self.cfg.spec_reclaims_rob {
                self.retire(idx);
            } else {
                self.release_resources(idx);
                self.rob.entry_mut(idx).released = true;
            }
            committed += 1;
        }
        self.scratch_commit = candidates;
        if !self.cfg.spec_reclaims_rob {
            // Cherry reserves ROB entries: reclaim in order once resolved.
            for _ in 0..cw {
                let Some(h) = self.rob.head() else { break };
                let e = self.rob.entry(h);
                if e.released && e.completed && self.rob.is_safe_self(h) {
                    self.rob.free(h);
                    self.cyc_quiet = false;
                } else {
                    break;
                }
            }
        }
        committed
    }

    fn commit_in_order(&mut self) -> usize {
        let policy = self.cfg.commit;
        let ecl = self.cfg.ecl;
        let cw = self.cfg.commit_width;
        let mut committed = 0;
        // "SPEC w/o ROB" holds entries after releasing resources; walk a
        // wider window so released entries do not mask grantable ones.
        let mut window = std::mem::take(&mut self.scratch_commit);
        self.rob.in_order_into(cw * 4, &mut window);
        for &idx in &window {
            if committed == cw {
                break;
            }
            let e = self.rob.entry(idx);
            if e.released {
                continue; // resources already released, awaiting reclaim
            }
            if e.wrong_path || e.fault {
                break;
            }
            let safe = self.rob.is_safe_self(idx);
            let can = match policy {
                CommitKind::InOrder => e.completed && safe,
                CommitKind::Vb => match e.class {
                    // Stores leave once non-speculative (address resolved);
                    // the SQ/SB picks the data up post-commit.
                    InstClass::Store => safe,
                    InstClass::Load => safe && (ecl || e.completed),
                    _ => safe,
                },
                CommitKind::Br => match e.class {
                    // Oracle branches never block commit.
                    InstClass::Branch => true,
                    InstClass::Load => safe && (ecl || e.completed),
                    _ => e.completed && safe,
                },
                CommitKind::Spec => unreachable!("handled separately"),
                CommitKind::Ecl => match e.class {
                    // DeSC: a safe load commits before its data arrives
                    // (safety implies the address already translated).
                    InstClass::Load => safe,
                    _ => e.completed && safe,
                },
                CommitKind::Orinoco => unreachable!("handled separately"),
            };
            let can = can
                && (e.class != InstClass::Store || self.sb.len() < self.cfg.sq_entries)
                // Post-commit execution lives in the finite validation
                // buffer: an incomplete instruction can only leave the ROB
                // if a VB entry is free.
                && (e.completed || self.rob.zombie_count() < self.cfg.vb_entries);
            if !can {
                break;
            }
            self.retire(idx);
            committed += 1;
        }
        self.scratch_commit = window;
        committed
    }

    /// Releases the architectural resources of a committing instruction:
    /// previous physical register, LQ entry, SQ entry (to the store
    /// buffer). Shared by full retire and the released-only path.
    fn release_resources(&mut self, idx: usize) {
        let e = self.rob.entry(idx);
        let (seq, class, dst, lq_slot, wrong_path) =
            (e.seq, e.class, e.dst, e.lq_slot, e.wrong_path);
        assert!(!wrong_path, "retiring a wrong-path instruction");
        if self.trace.is_some() || self.tracer.is_some() {
            let oldest_live_seq = self.rob.head().map(|h| self.rob.entry(h).seq);
            if self.trace.is_some() {
                let dyn_inst = self
                    .rob
                    .entry(idx)
                    .dyn_inst
                    .clone()
                    .expect("correct-path commit without a dynamic instruction");
                if let Some(trace) = self.trace.as_mut() {
                    trace.push(CommitEvent { seq, cycle: self.now, oldest_live_seq, dyn_inst });
                }
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                t.record(
                    self.now,
                    TraceEventKind::Commit,
                    seq,
                    oldest_live_seq.unwrap_or(u64::MAX),
                );
            }
        }
        self.stats.committed += 1;
        self.committed_count += 1;
        self.committed_seq_sum += u128::from(seq);
        if let Some((_, _, prev)) = dst {
            // Completed instructions release the previous mapping now;
            // instructions leaving the ROB before completion (post-commit
            // execution) hold it until they drain — the register status
            // stays imprecise exactly as §2.2 describes for VB.
            if self.rob.entry(idx).completed {
                self.rename.commit_remap(prev);
            }
        }
        if class == InstClass::Load {
            if let Some(slot) = lq_slot {
                self.lsq.free_load(slot);
                self.rob.entry_mut(idx).lq_slot = None;
                // The entry leaves the LQ (ECL-committed non-performed
                // loads included — weak model): clear its lockdown column.
                self.on_load_no_longer_blocking(slot);
                // Under the Cherry oracle the load's disambiguation state
                // is released with the LQ entry; replays are cost-free, so
                // the load counts as resolved from here on.
                if self.cfg.commit == CommitKind::Spec && !self.rob.is_safe_self(idx) {
                    self.rob.mark_safe(idx);
                }
            }
        }
        if class == InstClass::Store {
            let entry = self.lsq.commit_store_head(idx);
            self.rob.entry_mut(idx).sq_slot = None;
            self.sb
                .push_back((entry.addr.expect("committing unresolved store"), seq));
        }
        if class == InstClass::Barrier && self.external_drain {
            self.fence_seqs.retain(|&s| s != seq);
        }
    }

    fn retire(&mut self, idx: usize) {
        self.release_resources(idx);
        if self.rob.entry(idx).completed {
            self.rob.free(idx);
        } else {
            // Post-commit execution (VB/BR/ECL): zombie until ExecDone.
            self.rob.retire_early(idx);
        }
    }

    fn take_exception(&mut self, idx: usize) {
        let seq = self.rob.entry(idx).seq;
        self.stats.exceptions += 1;
        self.handled_faults.insert(seq);
        self.squash_ge(seq, false);
        self.fetch
            .redirect(seq, self.now, self.cfg.pagefault_penalty);
    }

    fn replay_from(&mut self, idx: usize) {
        let seq = self.rob.entry(idx).seq;
        self.stats.replays += 1;
        self.squash_ge(seq, false);
        self.fetch.redirect(seq, self.now, self.cfg.redirect_penalty);
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Squashes every instruction with `seq >= from`. For a branch
    /// mispredict pass `branch.seq + 1` (the branch survives); for an
    /// exception or replay pass the offender's own sequence (it
    /// re-executes).
    fn squash_ge(&mut self, from: u64, mispredict: bool) {
        self.cyc_quiet = false;
        self.rob.from_seq_into(from, &mut self.scratch_squash);
        let mut reinject = std::mem::take(&mut self.scratch_reinject);
        reinject.clear();
        for si in 0..self.scratch_squash.len() {
            let idx = self.scratch_squash[si];
            let e = self.rob.free(idx);
            self.stats.squashed += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.record(self.now, TraceEventKind::Squash, e.seq, u64::from(e.wrong_path));
            }
            if e.class == InstClass::Barrier && self.external_drain {
                self.fence_seqs.retain(|&s| s != e.seq);
            }
            if let Some((qi, slot)) = e.iq_slot {
                self.iqs[qi].remove(slot);
            }
            if !e.srcs_read {
                for p in e.srcs.into_iter().flatten() {
                    self.rename.unread_operand(p);
                }
            }
            if let Some((a, n, p)) = e.dst {
                self.rename.rollback_dest(a, n, p);
            }
            if let Some(slot) = e.lq_slot {
                // A correct-path load is squashed only to *re-execute*
                // (replay/exception) under the same seq. Any lockdown it
                // pins must stay held across the refetch gap — releasing
                // now would let a withheld coherence ack escape while the
                // load still owes a perform (and a remote store would
                // install before it reads, breaking TSO).
                if !e.wrong_path {
                    let mut rows = self.ldm.blocking_rows(slot, self.ldt_live);
                    while rows != 0 {
                        let row = rows.trailing_zeros() as usize;
                        rows &= rows - 1;
                        self.pending_reblock.push((row, e.seq));
                    }
                    self.limbo_load_seqs.push(e.seq);
                }
                self.lsq.free_load(slot);
                self.on_load_no_longer_blocking(slot);
            }
            if e.sq_slot.is_some() {
                self.lsq.squash_store_tail(idx);
            }
            if !e.wrong_path {
                debug_assert!(!mispredict, "correct-path victim of a mispredict squash");
                reinject.push(e.dyn_inst.expect("correct-path entry keeps its DynInst"));
            }
        }
        // The fetch/decode queue holds only instructions younger than any
        // squash point (fetch is in order): drain and re-inject the
        // correct-path ones.
        for (f, _) in self.fq.drain(..) {
            self.stats.squashed += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.record(self.now, TraceEventKind::Squash, f.inst.seq, u64::from(f.wrong_path));
            }
            if !f.wrong_path {
                debug_assert!(f.inst.seq >= from);
                reinject.push(f.inst);
            }
        }
        self.fetch.clear_wrong_path_owned_by(from.saturating_sub(1));
        self.fetch.reinject_drain(&mut reinject);
        self.scratch_reinject = reinject;
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        let mut budget = self.fus.budget(self.now);
        let ready_before: usize = self.iqs.iter().map(IssueQueue::ready_count).sum();
        self.cyc_ready_before = ready_before;
        self.stats.iq_ready_sum += ready_before as u64;
        let mut grants = std::mem::take(&mut self.scratch_grants);
        let mut granted_total = 0;
        let mut remaining = self.cfg.width;
        for qi in 0..self.iqs.len() {
            if remaining == 0 {
                break;
            }
            self.iqs[qi].select_into(&mut budget, remaining, &mut grants);
            remaining -= grants.len();
            granted_total += grants.len();
            // Grants are processed per queue: a later queue's selection is
            // unaffected (it sees only the shared `budget` array).
            let rank_base = granted_total - grants.len();
            for (k, (_slot, iqe)) in grants.drain(..).enumerate() {
                let idx = iqe.rob_idx;
                let iq_seq = iqe.seq;
                for p in iqe.srcs.into_iter().flatten() {
                    self.rename.read_operand(p);
                }
                let e = self.rob.entry_mut(idx);
                e.iq_slot = None;
                e.issued = true;
                e.srcs_read = true;
                let class = e.class;
                if class == InstClass::Store {
                    // The AGU no longer waits for the data register: note
                    // whether it was already available, or arrange to be
                    // told.
                    let data_ready = iqe.srcs[1].is_none() || iqe.src_ready[1];
                    e.store_data_ready = data_ready;
                    if !data_ready {
                        let p = iqe.srcs[1].expect("pending data register");
                        let gen = self.rob.generation(idx);
                        if self.store_data_waiters.len() >= self.cfg.sq_entries * 2 {
                            // Lazy prune keeps the flat list bounded (live
                            // waiters never exceed the SQ size).
                            let rob = &self.rob;
                            self.store_data_waiters.retain(|&(_, i, g)| rob.is_live(i, g));
                        }
                        self.store_data_waiters.push((p, idx, gen));
                    }
                }
                let lat = exec_latency(class);
                let until = if is_unpipelined(class) { self.now + lat } else { self.now + 1 };
                self.fus.occupy(Pool::of(class), self.now, until);
                let kind = if class.is_mem() { EventKind::AguDone } else { EventKind::ExecDone };
                self.events.push(Event {
                    at: self.now + lat,
                    kind,
                    rob_idx: idx,
                    gen: self.rob.generation(idx),
                });
                self.stats.issued += 1;
                if let Some(t) = self.tracer.as_deref_mut() {
                    // The grant rank is the instruction's position in the
                    // cycle's priority-ordered pick (0 = first grant of
                    // the age-matrix selection).
                    t.record(self.now, TraceEventKind::Issue, iq_seq, (rank_base + k) as u64);
                    t.record(
                        self.now,
                        TraceEventKind::Execute,
                        iq_seq,
                        Pool::of(class).idx() as u64,
                    );
                }
            }
        }
        if granted_total > 0 {
            self.cyc_quiet = false;
        }
        if ready_before > granted_total && ready_before > 0 {
            self.stats.issue_conflict_cycles += 1;
        }
        self.scratch_grants = grants;
    }

    // ------------------------------------------------------------------
    // Dispatch (rename + allocate)
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        self.scratch_used_banks.clear();
        self.scratch_used_banks.resize(self.cfg.width.max(1), false);
        for _ in 0..self.cfg.width {
            let Some((f, at)) = self.fq.front() else { break };
            if *at > self.now {
                break;
            }
            let d = &f.inst;
            // Atomic resource check; attribute the first exhausted
            // resource (top-down, §6.2).
            let pool_q = self.iq_index(Pool::of(d.class));
            let blocked = if self.rob.free_count() == 0 {
                Some(Resource::Rob)
            } else if !self.iqs[pool_q].has_space() {
                Some(Resource::Iq)
            } else if d.is_load() && self.lsq.lq_free() == 0 {
                Some(Resource::Lq)
            } else if d.is_store() && self.lsq.sq_free() == 0 {
                Some(Resource::Sq)
            } else if d.dst.is_some_and(|a| !self.rename.has_free_for(a)) {
                Some(Resource::RegFile)
            } else {
                None
            };
            if let Some(r) = blocked {
                self.stats.dispatch_stalls.record(r);
                self.cyc_dispatch_block = Some(r);
                break;
            }
            let (f, _) = self.fq.pop_front().expect("checked front");
            self.cyc_quiet = false;
            let d = f.inst;
            // Criticality (correct path only).
            let critical = match self.crit.as_mut() {
                Some(ce) if !f.wrong_path => {
                    let c = ce.is_critical(d.pc);
                    ce.rename_observe(d.pc, d.src1.into_iter().chain(d.src2));
                    if let Some(dst) = d.dst {
                        ce.note_writer(dst, d.pc);
                    }
                    c
                }
                _ => false,
            };
            // Rename.
            let srcs = [
                d.src1.map(|a| self.rename.rename_source(a)),
                d.src2.map(|a| self.rename.rename_source(a)),
            ];
            let dst = d.dst.map(|a| {
                let (new, prev) = self.rename.rename_dest(a).expect("checked free regs");
                (a, new, prev)
            });
            let speculative = match d.class {
                InstClass::Branch => d.op != Opcode::Jal,
                InstClass::Load | InstClass::Store | InstClass::Barrier => true,
                _ => false,
            };
            let entry = RobEntry {
                seq: d.seq,
                pc: d.pc,
                op: d.op,
                class: d.class,
                wrong_path: f.wrong_path,
                dst,
                srcs,
                srcs_read: false,
                iq_slot: None,
                lq_slot: None,
                sq_slot: None,
                issued: false,
                agu_done: false,
                store_data_ready: false,
                completed: false,
                mispredicted: f.mispredicted,
                fault: false,
                mem_addr: d.mem_addr,
                next_pc: d.next_pc,
                taken: d.taken,
                critical,
                retired: false,
                released: false,
                // The DynInst moves into the ROB entry (no clone); the
                // bank-conflict path below recovers it from the returned
                // entry.
                dyn_inst: Some(d),
            };
            let seq = entry.seq;
            let class = entry.class;
            let rob_idx = if self.cfg.banked_dispatch {
                match self.rob.alloc_banked(entry, speculative, &self.scratch_used_banks) {
                    Ok(idx) => {
                        let b = self.rob.bank_of(idx, self.scratch_used_banks.len());
                        self.scratch_used_banks[b] = true;
                        idx
                    }
                    Err(mut entry) => {
                        // Write-port conflict: every free slot sits in a
                        // bank already written this cycle. The instruction
                        // is already renamed; un-rename and retry next
                        // cycle.
                        self.stats.bank_conflict_stalls += 1;
                        for p in srcs.into_iter().flatten() {
                            self.rename.unread_operand(p);
                        }
                        if let Some((a, n, p)) = dst {
                            self.rename.rollback_dest(a, n, p);
                        }
                        let d = entry.dyn_inst.take().expect("entry keeps its DynInst");
                        self.fq.push_front((
                            Fetched { inst: d, wrong_path: f.wrong_path, mispredicted: f.mispredicted },
                            self.now,
                        ));
                        break;
                    }
                }
            } else {
                self.rob.alloc(entry, speculative).expect("checked ROB space")
            };
            if class == InstClass::Barrier && self.external_drain {
                // Track live fences (wrong-path ones included — they gate
                // conservatively until squashed) for the fence→read gate.
                self.fence_seqs.push(seq);
            }
            if speculative {
                self.spec_dispatched += 1;
                if self.chaos_spec_flip == Some(self.spec_dispatched) {
                    // Injected commit-matrix fault: the SPEC bit this
                    // dispatch just set is flipped back off.
                    self.chaos_spec_flip = None;
                    self.rob.mark_safe(rob_idx);
                }
            }
            // LSQ.
            let lq_slot = (class == InstClass::Load)
                .then(|| self.lsq.alloc_load(rob_idx, seq).expect("checked LQ space"));
            if let Some(slot) = lq_slot {
                // Every fresh load starts as a safety-scan candidate
                // (wrong-path loads included: the scan marks them safe
                // exactly as the full-queue walk did).
                self.spec_loads.set(slot);
            }
            let sq_slot = (class == InstClass::Store)
                .then(|| self.lsq.alloc_store(rob_idx, seq).expect("checked SQ space"));
            // IQ.
            let src_ready = [
                srcs[0].is_none_or(|p| self.rename.is_ready(p)),
                srcs[1].is_none_or(|p| self.rename.is_ready(p)),
            ];
            let iq_slot = self.iqs[pool_q]
                .allocate(IqEntry {
                    rob_idx,
                    pool: Pool::of(class),
                    critical,
                    seq,
                    srcs,
                    src_ready,
                    // Stores issue address generation on the address
                    // operand alone; the data operand merges later.
                    wait_on: [true, class != InstClass::Store],
                })
                .expect("checked IQ space");
            let e = self.rob.entry_mut(rob_idx);
            e.iq_slot = Some((pool_q, iq_slot));
            e.lq_slot = lq_slot;
            e.sq_slot = sq_slot;
            if let Some(slot) = lq_slot {
                if !f.wrong_path {
                    self.limbo_load_seqs.retain(|&s| s != seq);
                    if !self.pending_reblock.is_empty() {
                        // A replayed blocking load is back in the LQ:
                        // re-pin the lockdown rows that stayed held for
                        // it.
                        self.pending_reblock.retain(|&(row, s)| {
                            if s == seq {
                                self.ldm.reblock(row, slot);
                                false
                            } else {
                                true
                            }
                        });
                    }
                }
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                t.record(self.now, TraceEventKind::Rename, seq, u64::from(f.wrong_path));
                t.record(self.now, TraceEventKind::Dispatch, seq, u64::from(speculative));
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch_stage(&mut self) {
        let cap = self.cfg.width * (self.cfg.frontend_depth as usize + 2);
        if self.fq.len() >= cap {
            return;
        }
        let dispatchable_at = self.now + self.cfg.frontend_depth;
        self.fetch.fetch_into(self.now, self.cfg.width, &mut self.scratch_fetch);
        if !self.scratch_fetch.is_empty() {
            self.cyc_quiet = false;
        }
        for f in self.scratch_fetch.drain(..) {
            if let Some(t) = self.tracer.as_deref_mut() {
                t.record(self.now, TraceEventKind::Fetch, f.inst.seq, f.inst.pc);
            }
            self.fq.push_back((f, dispatchable_at));
        }
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("config", &self.cfg.name)
            .field("cycle", &self.now)
            .field("rob", &self.rob.len())
            .field("iq", &self.iq_len_total())
            .field("committed", &self.stats.committed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use orinoco_isa::ProgramBuilder;

    fn tiny_core(cfg: CoreConfig) -> Core {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.halt();
        Core::new(Emulator::new(b.build(), 256), cfg)
    }

    #[test]
    fn unified_core_has_one_queue() {
        let core = tiny_core(CoreConfig::base());
        assert_eq!(core.iqs.len(), 1);
        assert_eq!(core.iq_index(Pool::Fp), 0);
        assert_eq!(core.iq_index(Pool::Mem), 0);
    }

    #[test]
    fn split_core_has_one_queue_per_pool() {
        let core = tiny_core(CoreConfig::base().with_split_iq());
        assert_eq!(core.iqs.len(), 4);
        assert_eq!(core.iq_index(Pool::Int), Pool::Int.idx());
        assert_eq!(core.iq_index(Pool::Mem), Pool::Mem.idx());
        let caps: usize = core.iqs.iter().map(IssueQueue::capacity).sum();
        // 40/10/20/30 split of 97, each at least 4
        assert!(caps <= CoreConfig::base().iq_entries + 12);
    }

    #[test]
    fn invalidation_of_unlocked_line_acks_immediately() {
        let mut core = tiny_core(CoreConfig::base());
        assert!(core.inject_invalidation(0x4000));
        assert_eq!(core.active_lockdowns(), 0);
        assert_eq!(core.any_locked_line(), None);
    }

    #[test]
    fn fault_roll_is_deterministic_and_respects_handled_set() {
        let mut core = tiny_core(CoreConfig {
            pagefault_per_million: 500_000, // ~half of all rolls fault
            ..CoreConfig::base()
        });
        let first: Vec<bool> = (0..64).map(|s| core.fault_roll(s)).collect();
        let second: Vec<bool> = (0..64).map(|s| core.fault_roll(s)).collect();
        assert_eq!(first, second, "roll must be a pure function of seq/seed");
        assert!(first.iter().any(|&b| b));
        assert!(first.iter().any(|&b| !b));
        let victim = (0..64).find(|&s| core.fault_roll(s)).expect("some fault");
        core.handled_faults.insert(victim);
        assert!(!core.fault_roll(victim), "handled fault must not re-fire");
    }

    #[test]
    fn lifecycle_trace_covers_every_transition_kind() {
        use orinoco_isa::ArchReg;
        let mut b = ProgramBuilder::new();
        let x1 = ArchReg::int(1);
        let x2 = ArchReg::int(2);
        b.li(x1, 50);
        b.li(x2, 0);
        let top = b.label();
        b.bind(top);
        b.mul(x2, x2, x1); //   long-latency producer: consumers sleep in
        b.add(x2, x2, x1); //   the IQ and get woken by the writeback.
        b.addi(x1, x1, -1);
        b.bne(x1, ArchReg::ZERO, top);
        b.halt();
        let cfg = CoreConfig::base()
            .with_scheduler(SchedulerKind::Orinoco)
            .with_commit(CommitKind::Orinoco);
        let mut core = Core::new(Emulator::new(b.build(), 1 << 16), cfg);
        core.enable_tracing(1 << 16);
        let stats = core.run(100_000).clone();
        let t = core.tracer().expect("tracing enabled");
        assert_eq!(t.dropped(), 0, "ring sized for the whole run");
        let count = |k: TraceEventKind| t.records().filter(|r| r.kind == k).count() as u64;
        // One commit event per committed instruction, and every
        // transition kind (including wakeup and commit-eligible from the
        // speculative branches) appears.
        assert_eq!(count(TraceEventKind::Commit), stats.committed);
        for k in TraceEventKind::ALL {
            assert!(count(k) > 0, "no {} events recorded", k.label());
        }
        // The taxonomy attributes exactly the zero-commit cycles.
        assert_eq!(
            stats.stall_taxonomy.total(),
            count(TraceEventKind::Stall),
            "one stall record per attributed cycle"
        );
        assert!(stats.stall_taxonomy.total() > 0);
    }

    #[test]
    fn tiny_program_drains_in_a_few_cycles() {
        for sched in [SchedulerKind::Age, SchedulerKind::Orinoco] {
            let mut core = tiny_core(CoreConfig::base().with_scheduler(sched));
            let stats = core.run(10_000);
            assert_eq!(stats.committed, 2); // nop + halt
            assert!(stats.cycles < 100);
        }
    }
}
