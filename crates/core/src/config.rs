//! Core configuration: the Base/Pro/Ultra microarchitectures of Table 1,
//! the issue-queue scheduler variants of §6.2 (Figure 14) and the commit
//! policy variants of §6.2 (Figure 15).

use orinoco_frontend::PredictorKind;
use orinoco_isa::InstClass;
use orinoco_mem::MemConfig;

/// Issue-queue scheduler designs evaluated in Figure 14 (plus the
/// historical queue organisations of §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Collapsible queue (Alpha 21264 style): capacity-efficient and
    /// ideally ordered, but physically unimplementable at modern sizes.
    /// Functionally identical schedule to [`SchedulerKind::Orinoco`] — the
    /// difference is circuit cost, modelled in `orinoco-circuit`.
    Shift,
    /// Circular queue: ordered but capacity-inefficient (gaps persist
    /// until the head passes them).
    Circ,
    /// Random queue: capacity-efficient, order-oblivious select.
    Rand,
    /// Random queue + classic age matrix: only the single oldest ready
    /// instruction is prioritised, the rest of the width is filled in
    /// arbitrary order (AMD Bulldozer / IBM POWER8 style).
    Age,
    /// One age matrix per FU type: the single oldest ready instruction *of
    /// each type* is prioritised (the MULT configuration).
    Mult,
    /// The paper's design: age matrix with bit count encoding, granting up
    /// to the per-type issue width oldest ready instructions.
    Orinoco,
    /// Criticality-aware scheduling on top of the classic age matrix
    /// (CRI w/ AGE in Figure 14).
    CriAge,
    /// Criticality-aware scheduling with ideal intra- and inter-class
    /// ordering (CRI w/ Orinoco in Figure 14).
    CriOrinoco,
}

impl SchedulerKind {
    /// All kinds, in Figure 14 presentation order.
    pub const ALL: [SchedulerKind; 8] = [
        SchedulerKind::Shift,
        SchedulerKind::Circ,
        SchedulerKind::Rand,
        SchedulerKind::Age,
        SchedulerKind::Mult,
        SchedulerKind::Orinoco,
        SchedulerKind::CriAge,
        SchedulerKind::CriOrinoco,
    ];

    /// `true` if the scheduler uses criticality tagging.
    #[must_use]
    pub fn uses_criticality(self) -> bool {
        matches!(self, SchedulerKind::CriAge | SchedulerKind::CriOrinoco)
    }

    /// Label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Shift => "SHIFT",
            SchedulerKind::Circ => "CIRC",
            SchedulerKind::Rand => "RAND",
            SchedulerKind::Age => "AGE",
            SchedulerKind::Mult => "MULT",
            SchedulerKind::Orinoco => "Orinoco",
            SchedulerKind::CriAge => "CRI w/ AGE",
            SchedulerKind::CriOrinoco => "CRI w/ Orinoco",
        }
    }
}

/// Commit policies evaluated in Figure 15.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommitKind {
    /// In-order commit (the baseline).
    InOrder,
    /// The paper's non-speculative out-of-order commit: completed
    /// instructions leave the non-collapsible ROB as soon as no older
    /// instruction may misspeculate or fault.
    Orinoco,
    /// Validation Buffer: instructions leave the ROB *in order* as soon as
    /// they are guaranteed non-speculative, without waiting for
    /// completion (post-commit execution).
    Vb,
    /// NOREBA-style upper bound: in-order commit where branches are
    /// oracle (never block commit); non-branch instructions must complete.
    Br,
    /// Cherry-style upper bound: oracle speculative commit without
    /// rollback cost — completed instructions leave in order regardless of
    /// unresolved speculation.
    Spec,
    /// DeSC-style early commit of loads: in-order commit, but safe loads
    /// may leave before their data arrives (weak consistency only).
    Ecl,
}

impl CommitKind {
    /// All kinds, in Figure 15 presentation order.
    pub const ALL: [CommitKind; 6] = [
        CommitKind::InOrder,
        CommitKind::Orinoco,
        CommitKind::Vb,
        CommitKind::Br,
        CommitKind::Spec,
        CommitKind::Ecl,
    ];

    /// Label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CommitKind::InOrder => "IOC",
            CommitKind::Orinoco => "Orinoco",
            CommitKind::Vb => "VB",
            CommitKind::Br => "BR",
            CommitKind::Spec => "SPEC",
            CommitKind::Ecl => "ECL",
        }
    }
}

/// Functional-unit pools (counts per class group).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuPools {
    /// Integer ALUs (also execute branches and barriers).
    pub int_alu: usize,
    /// Integer multiply/divide units.
    pub muldiv: usize,
    /// Floating-point units (add/mul/div).
    pub fp: usize,
    /// Memory ports (AGUs).
    pub mem: usize,
}

impl FuPools {
    /// Total functional units (the "FU" row of Table 1).
    #[must_use]
    pub fn total(&self) -> usize {
        self.int_alu + self.muldiv + self.fp + self.mem
    }
}

/// Pool index for a given instruction class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pool {
    /// Integer ALU / branch / barrier pool.
    Int,
    /// Integer multiply/divide pool.
    MulDiv,
    /// Floating-point pool.
    Fp,
    /// Memory (AGU) pool.
    Mem,
}

impl Pool {
    /// All pools.
    pub const ALL: [Pool; 4] = [Pool::Int, Pool::MulDiv, Pool::Fp, Pool::Mem];

    /// The pool serving `class`.
    #[must_use]
    pub fn of(class: InstClass) -> Pool {
        match class {
            InstClass::IntAlu | InstClass::Branch | InstClass::Barrier => Pool::Int,
            InstClass::IntMul | InstClass::IntDiv => Pool::MulDiv,
            InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv => Pool::Fp,
            InstClass::Load | InstClass::Store => Pool::Mem,
        }
    }

    /// Index into pool-count arrays.
    #[must_use]
    pub fn idx(self) -> usize {
        match self {
            Pool::Int => 0,
            Pool::MulDiv => 1,
            Pool::Fp => 2,
            Pool::Mem => 3,
        }
    }
}

/// Execution latency in cycles for `class` (memory classes give the AGU
/// latency; the cache access is modelled separately).
#[must_use]
pub fn exec_latency(class: InstClass) -> u64 {
    match class {
        InstClass::IntAlu | InstClass::Branch | InstClass::Barrier => 1,
        InstClass::IntMul => 3,
        InstClass::IntDiv => 20,
        InstClass::FpAlu => 3,
        InstClass::FpMul => 4,
        InstClass::FpDiv => 24,
        InstClass::Load | InstClass::Store => 1,
    }
}

/// `true` if the class occupies its functional unit until completion
/// (unpipelined).
#[must_use]
pub fn is_unpipelined(class: InstClass) -> bool {
    matches!(class, InstClass::IntDiv | InstClass::FpDiv)
}

/// Full core configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Human-readable name ("Base", "Pro", "Ultra", ...).
    pub name: &'static str,
    /// Front-end fetch/rename/dispatch width and back-end issue width
    /// (the paper uses IW = CW).
    pub width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Instruction-queue entries (unified IQ).
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Physical register-file size (shared int/fp for simplicity; the
    /// paper's RF row).
    pub phys_regs: usize,
    /// Functional-unit pools.
    pub fu: FuPools,
    /// Issue-queue scheduler.
    pub scheduler: SchedulerKind,
    /// Commit policy.
    pub commit: CommitKind,
    /// Early commit of loads (ECL) applied on top of `Vb`/`Br` (the
    /// "w/o ECL" ablations of Figure 15 set this to `false`).
    pub ecl: bool,
    /// For `Spec`: reclaim ROB entries out of order too ("SPEC" keeps
    /// true; "SPEC w/o ROB" = Cherry proper sets this to `false`).
    pub spec_reclaims_rob: bool,
    /// Capacity of the post-commit execution structure for `Vb`/`Br`/
    /// `Ecl` (the validation buffer itself): instructions that left the
    /// ROB before completing occupy one entry each until they finish.
    pub vb_entries: usize,
    /// Commit depth for the Orinoco policy: how far (in program order,
    /// from the oldest live instruction) the commit logic scans for
    /// out-of-order grants. `None` = unlimited (the paper's design; §6.2
    /// notes that a limited depth "hinders reaping the maximum
    /// performance benefits of OoO commit").
    pub commit_depth: Option<usize>,
    /// Model the §4.3 multibank write-port constraint on the ROB age
    /// matrix: at most one dispatch per bank per cycle, with `width`
    /// horizontal banks and load-balanced steering.
    pub banked_dispatch: bool,
    /// Use separate per-FU-type issue queues instead of the unified IQ
    /// (§5: "separate IQs ... divide and conquer the monolithic
    /// complexity by decentralizing the wakeup matrix and the age matrix
    /// at the cost of capacity efficiency"). The unified capacity is
    /// split 40/10/20/30 across Int/MulDiv/Fp/Mem.
    pub split_iq: bool,
    /// Branch direction predictor.
    pub predictor: PredictorKind,
    /// Memory system.
    pub mem: MemConfig,
    /// Extra front-end redirect penalty after a squash, in cycles.
    pub redirect_penalty: u64,
    /// Front-end depth: cycles between fetch and earliest dispatch.
    pub frontend_depth: u64,
    /// Page faults injected per million memory operations (exercises the
    /// precise-exception path; 0 disables).
    pub pagefault_per_million: u32,
    /// Cycles charged for a page-fault handler.
    pub pagefault_penalty: u64,
    /// RNG seed for deterministic wrong-path synthesis and fault
    /// injection.
    pub seed: u64,
    /// Idle-cycle fast-forward: when a cycle ends with the machine
    /// provably frozen (nothing issued, dispatched, fetched, completed or
    /// committed), jump the clock to the next scheduled event in one step.
    /// Observationally equivalent to cycle-by-cycle simulation — identical
    /// `SimStats`, stall taxonomy and lifecycle traces — just faster.
    pub fast_forward: bool,
}

impl CoreConfig {
    /// The paper's **Base** configuration (Skylake-like, Table 1):
    /// 4-wide, ROB 224, IQ 97, LQ/SQ 72/56, RF 180, 8 FUs.
    #[must_use]
    pub fn base() -> Self {
        Self {
            name: "Base",
            width: 4,
            commit_width: 4,
            rob_entries: 224,
            iq_entries: 97,
            lq_entries: 72,
            sq_entries: 56,
            phys_regs: 180,
            fu: FuPools { int_alu: 3, muldiv: 1, fp: 2, mem: 2 },
            scheduler: SchedulerKind::Age,
            commit: CommitKind::InOrder,
            ecl: true,
            spec_reclaims_rob: true,
            vb_entries: 64,
            commit_depth: None,
            banked_dispatch: false,
            split_iq: false,
            predictor: PredictorKind::Tage,
            mem: MemConfig::default(),
            redirect_penalty: 5,
            frontend_depth: 5,
            pagefault_per_million: 0,
            pagefault_penalty: 300,
            seed: 0xC0FFEE,
            fast_forward: true,
        }
    }

    /// The paper's **Pro** configuration: 6-wide, ROB 256, IQ 160,
    /// LQ/SQ 128/72, RF 280, 8 FUs.
    #[must_use]
    pub fn pro() -> Self {
        // miss-handling scales with the deeper window
        let mem = MemConfig { mshrs: 48, ..MemConfig::default() };
        Self {
            name: "Pro",
            width: 6,
            commit_width: 6,
            rob_entries: 256,
            iq_entries: 160,
            lq_entries: 128,
            sq_entries: 72,
            phys_regs: 280,
            fu: FuPools { int_alu: 3, muldiv: 1, fp: 2, mem: 2 },
            mem,
            ..Self::base()
        }
    }

    /// The paper's **Ultra** configuration: 8-wide, ROB 512, IQ 224,
    /// LQ/SQ 128/72, RF 380, 11 FUs.
    #[must_use]
    pub fn ultra() -> Self {
        // miss-handling scales with the deeper window
        let mem = MemConfig { mshrs: 64, ..MemConfig::default() };
        Self {
            name: "Ultra",
            width: 8,
            commit_width: 8,
            rob_entries: 512,
            iq_entries: 224,
            lq_entries: 128,
            sq_entries: 72,
            phys_regs: 380,
            fu: FuPools { int_alu: 4, muldiv: 1, fp: 3, mem: 3 },
            mem,
            ..Self::base()
        }
    }

    /// Sets the scheduler (builder style).
    #[must_use]
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Sets the commit policy (builder style).
    #[must_use]
    pub fn with_commit(mut self, c: CommitKind) -> Self {
        self.commit = c;
        self
    }

    /// Disables early commit of loads (the "w/o ECL" ablations).
    #[must_use]
    pub fn without_ecl(mut self) -> Self {
        self.ecl = false;
        self
    }

    /// Disables out-of-order ROB reclamation for `Spec`
    /// (the "SPEC w/o ROB" ablation).
    #[must_use]
    pub fn without_rob_reclaim(mut self) -> Self {
        self.spec_reclaims_rob = false;
        self
    }

    /// Limits the Orinoco commit scan depth (ablation; the paper's design
    /// scans the whole non-collapsible ROB).
    #[must_use]
    pub fn with_commit_depth(mut self, depth: usize) -> Self {
        self.commit_depth = Some(depth);
        self
    }

    /// Enables the multibank dispatch-steering constraint (§4.3).
    #[must_use]
    pub fn with_banked_dispatch(mut self) -> Self {
        self.banked_dispatch = true;
        self
    }

    /// Disables the idle-cycle fast-forward (cycle-by-cycle simulation;
    /// used by the equivalence harness and perf comparisons).
    #[must_use]
    pub fn without_fast_forward(mut self) -> Self {
        self.fast_forward = false;
        self
    }

    /// Switches to separate per-FU-type issue queues (§5).
    #[must_use]
    pub fn with_split_iq(mut self) -> Self {
        self.split_iq = true;
        self
    }

    /// `true` when `other` differs from `self` at most in its RNG `seed`
    /// — the reuse predicate of [`crate::Fleet`]: a parked core built
    /// under a same-shape configuration can be re-seeded and reset for a
    /// new program instead of reallocating every structure.
    #[must_use]
    pub fn same_shape(&self, other: &Self) -> bool {
        let mut probe = self.clone();
        probe.seed = other.seed;
        probe == *other
    }

    /// Per-pool IQ capacities when `split_iq` is set: 40/10/20/30 percent
    /// of the unified capacity for Int/MulDiv/Fp/Mem (each at least 4).
    #[must_use]
    pub fn split_iq_capacities(&self) -> [usize; 4] {
        let n = self.iq_entries;
        let parts = [n * 40 / 100, n * 10 / 100, n * 20 / 100, n * 30 / 100];
        parts.map(|p| p.max(4))
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (zero widths, IQ larger than
    /// ROB, fewer physical registers than architectural, ...).
    pub fn validate(&self) {
        assert!(self.width > 0 && self.commit_width > 0, "zero width");
        assert!(self.rob_entries >= self.width, "ROB smaller than width");
        assert!(self.iq_entries <= self.rob_entries, "IQ larger than ROB");
        assert!(
            self.phys_regs > orinoco_isa::NUM_INT_REGS,
            "need more physical than architectural registers per file"
        );
        assert!(self.fu.total() > 0, "no functional units");
        assert!(self.lq_entries > 0 && self.sq_entries > 0, "empty LSQ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        let base = CoreConfig::base();
        assert_eq!((base.width, base.rob_entries, base.iq_entries), (4, 224, 97));
        assert_eq!((base.lq_entries, base.sq_entries, base.phys_regs), (72, 56, 180));
        assert_eq!(base.fu.total(), 8);
        let pro = CoreConfig::pro();
        assert_eq!((pro.width, pro.rob_entries, pro.iq_entries), (6, 256, 160));
        assert_eq!(pro.fu.total(), 8);
        let ultra = CoreConfig::ultra();
        assert_eq!((ultra.width, ultra.rob_entries, ultra.iq_entries), (8, 512, 224));
        assert_eq!(ultra.fu.total(), 11);
        base.validate();
        pro.validate();
        ultra.validate();
    }

    #[test]
    fn pool_mapping_covers_all_classes() {
        for class in InstClass::ALL {
            let _ = Pool::of(class);
            assert!(exec_latency(class) >= 1);
        }
        assert_eq!(Pool::of(InstClass::Branch), Pool::Int);
        assert_eq!(Pool::of(InstClass::IntDiv), Pool::MulDiv);
        assert_eq!(Pool::of(InstClass::Load), Pool::Mem);
        assert!(is_unpipelined(InstClass::FpDiv));
        assert!(!is_unpipelined(InstClass::IntMul));
    }

    #[test]
    fn builder_helpers() {
        let c = CoreConfig::base()
            .with_scheduler(SchedulerKind::Orinoco)
            .with_commit(CommitKind::Vb)
            .without_ecl();
        assert_eq!(c.scheduler, SchedulerKind::Orinoco);
        assert_eq!(c.commit, CommitKind::Vb);
        assert!(!c.ecl);
        let s = CoreConfig::base().with_commit(CommitKind::Spec).without_rob_reclaim();
        assert!(!s.spec_reclaims_rob);
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in SchedulerKind::ALL {
            assert!(seen.insert(k.label()));
        }
        let mut seen = std::collections::HashSet::new();
        for k in CommitKind::ALL {
            assert!(seen.insert(k.label()));
        }
    }

    #[test]
    fn criticality_flags() {
        assert!(SchedulerKind::CriAge.uses_criticality());
        assert!(SchedulerKind::CriOrinoco.uses_criticality());
        assert!(!SchedulerKind::Orinoco.uses_criticality());
    }

    #[test]
    #[should_panic(expected = "IQ larger than ROB")]
    fn invalid_config_panics() {
        let mut c = CoreConfig::base();
        c.iq_entries = 1000;
        c.validate();
    }
}
