//! Simulation result statistics.

use crate::fetch::FetchStats;
use orinoco_mem::MemStats;
use orinoco_stats::{Histogram, StallBreakdown, StallTaxonomy};

/// Aggregate statistics of one simulation run.
#[derive(Clone, Debug)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Correct-path instructions committed.
    pub committed: u64,
    /// Instructions squashed (wrong path, exceptions, replays).
    pub squashed: u64,
    /// Dispatch-blocked cycles attributed per exhausted resource
    /// ("full window stalls").
    pub dispatch_stalls: StallBreakdown,
    /// Cycles with zero commits while the ROB held instructions.
    pub commit_stall_cycles: u64,
    /// Per-cause attribution of every zero-commit cycle (the trace
    /// layer's cycle-level stall taxonomy; always collected).
    pub stall_taxonomy: StallTaxonomy,
    /// Of those, cycles where at least one instruction satisfied every
    /// out-of-order commit condition but was not at the head (the paper's
    /// 72% observation).
    pub commit_stall_ooo_ready: u64,
    /// Cycles where more instructions were ready than could issue
    /// (arbitration pressure, §2: 18% of cycles).
    pub issue_conflict_cycles: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Commits that left the ROB while an older instruction remained
    /// (out-of-order commits).
    pub ooo_commits: u64,
    /// Dispatch cycles cut short by a matrix-scheduler bank write-port
    /// conflict (only with `banked_dispatch`, §4.3).
    pub bank_conflict_stalls: u64,
    /// Memory replay traps taken.
    pub replays: u64,
    /// Precise exceptions taken.
    pub exceptions: u64,
    /// Sum of ROB occupancy over cycles (for averages).
    pub rob_occ_sum: u64,
    /// Sum of IQ occupancy over cycles.
    pub iq_occ_sum: u64,
    /// Sum over cycles of the number of ready (requesting) IQ entries —
    /// the age-matrix activity factor used by the power model.
    pub iq_ready_sum: u64,
    /// Fetch statistics.
    pub fetch: FetchStats,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Distribution of instructions committed per cycle (bucket 16 covers
    /// any width up to Ultra's CW = 8 with headroom).
    pub commit_width_hist: Histogram,
}

impl Default for SimStats {
    fn default() -> Self {
        Self {
            cycles: 0,
            committed: 0,
            squashed: 0,
            dispatch_stalls: StallBreakdown::default(),
            commit_stall_cycles: 0,
            stall_taxonomy: StallTaxonomy::default(),
            commit_stall_ooo_ready: 0,
            issue_conflict_cycles: 0,
            issued: 0,
            ooo_commits: 0,
            bank_conflict_stalls: 0,
            replays: 0,
            exceptions: 0,
            rob_occ_sum: 0,
            iq_occ_sum: 0,
            iq_ready_sum: 0,
            fetch: FetchStats::default(),
            mem: MemStats::default(),
            commit_width_hist: Histogram::new(16),
        }
    }
}

impl SimStats {
    /// Zeroes every counter in place, keeping the commit-width
    /// histogram's bucket allocation (core reset path).
    pub fn reset(&mut self) {
        self.cycles = 0;
        self.committed = 0;
        self.squashed = 0;
        self.dispatch_stalls = StallBreakdown::default();
        self.commit_stall_cycles = 0;
        self.stall_taxonomy = StallTaxonomy::default();
        self.commit_stall_ooo_ready = 0;
        self.issue_conflict_cycles = 0;
        self.issued = 0;
        self.ooo_commits = 0;
        self.bank_conflict_stalls = 0;
        self.replays = 0;
        self.exceptions = 0;
        self.rob_occ_sum = 0;
        self.iq_occ_sum = 0;
        self.iq_ready_sum = 0;
        self.fetch = FetchStats::default();
        self.mem = MemStats::default();
        self.commit_width_hist.clear();
    }

    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mean ROB occupancy.
    #[must_use]
    pub fn avg_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occ_sum as f64 / self.cycles as f64
        }
    }

    /// Mean IQ occupancy.
    #[must_use]
    pub fn avg_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occ_sum as f64 / self.cycles as f64
        }
    }

    /// Branch misses per kilo-instruction.
    #[must_use]
    pub fn branch_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.fetch.mispredicts as f64 * 1000.0 / self.committed as f64
        }
    }

    /// L1 misses per kilo-instruction.
    #[must_use]
    pub fn l1_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.mem.l1_misses as f64 * 1000.0 / self.committed as f64
        }
    }

    /// Mean instructions committed per committing cycle.
    #[must_use]
    pub fn commit_burst_mean(&self) -> f64 {
        self.commit_width_hist.mean()
    }

    /// Fraction of cycles that committed at least `k` instructions.
    #[must_use]
    pub fn commit_at_least(&self, k: u64) -> f64 {
        self.commit_width_hist.fraction_at_least(k)
    }

    /// Fraction of commit-stalled cycles where some instruction met every
    /// OoO-commit condition away from the head.
    #[must_use]
    pub fn ooo_ready_fraction(&self) -> f64 {
        if self.commit_stall_cycles == 0 {
            0.0
        } else {
            self.commit_stall_ooo_ready as f64 / self.commit_stall_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            rob_occ_sum: 1000,
            iq_occ_sum: 500,
            commit_stall_cycles: 40,
            commit_stall_ooo_ready: 30,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.avg_rob_occupancy() - 10.0).abs() < 1e-12);
        assert!((s.avg_iq_occupancy() - 5.0).abs() < 1e-12);
        assert!((s.ooo_ready_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn commit_burst_metrics() {
        let mut s = SimStats::default();
        s.commit_width_hist.record(0);
        s.commit_width_hist.record(4);
        s.commit_width_hist.record(4);
        assert!((s.commit_burst_mean() - 8.0 / 3.0).abs() < 1e-12);
        assert!((s.commit_at_least(4) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.commit_at_least(5), 0.0);
    }

    #[test]
    fn zero_cycles_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_rob_occupancy(), 0.0);
        assert_eq!(s.branch_mpki(), 0.0);
        assert_eq!(s.l1_mpki(), 0.0);
        assert_eq!(s.ooo_ready_fraction(), 0.0);
    }
}
