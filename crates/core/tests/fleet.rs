//! `Fleet` batch-stepping tests.
//!
//! The verification campaigns and the `fleet/` bench family run programs
//! through a shared [`Fleet`] instead of one fresh [`Core`] each, so the
//! pooled results are only trustworthy if slice-interleaved, lane-reused
//! runs are byte-identical to serial fresh-core runs: same `SimStats`
//! Debug rendering, same final architectural state, batch after batch.

use orinoco_core::{CommitKind, Core, CoreConfig, Fleet, SchedulerKind};
use orinoco_isa::Emulator;
use orinoco_workloads::Workload;

fn orinoco_cfg() -> CoreConfig {
    CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco)
}

fn emu_for(w: Workload, seed: u64) -> Emulator {
    let mut emu = w.build(seed, 1);
    emu.set_step_limit(5_000);
    emu
}

fn fresh_stats(w: Workload, seed: u64, cfg: CoreConfig) -> String {
    let mut core = Core::new(emu_for(w, seed), cfg);
    format!("{:?}", core.run(100_000_000))
}

const BATCH: [(Workload, u64); 5] = [
    (Workload::GemmLike, 13),
    (Workload::HashjoinLike, 7),
    (Workload::MemlatLike, 3),
    (Workload::ExchangeLike, 11),
    (Workload::GemmLike, 29),
];

#[test]
fn batched_run_matches_serial_fresh_runs() {
    // Tight stride forces many interleaved slices per lane.
    let mut fleet = Fleet::with_stride(256);
    for (w, seed) in BATCH {
        fleet.load(orinoco_cfg(), emu_for(w, seed));
    }
    fleet.run_batch(100_000_000);
    for (lane, (w, seed)) in BATCH.into_iter().enumerate() {
        assert!(fleet.lane_finished(lane));
        let batched = format!("{:?}", fleet.core(lane).stats());
        assert_eq!(
            batched,
            fresh_stats(w, seed, orinoco_cfg()),
            "{w} seed {seed}: batched run diverges from a fresh core"
        );
        assert_eq!(fleet.cycles()[lane], fleet.core(lane).stats().cycles);
    }
}

#[test]
fn lane_reuse_across_batches_matches_fresh_runs() {
    let mut fleet = Fleet::new();
    // Warm-up batch dirties the lanes with different programs/seeds.
    for (w, seed) in BATCH {
        fleet.load(orinoco_cfg(), emu_for(w, seed + 100));
    }
    fleet.run_batch(100_000_000);
    let warm = fleet.capacity();
    fleet.clear();
    assert!(fleet.is_empty());

    // Second batch must revive parked lanes (no growth) and still match.
    for (w, seed) in BATCH {
        fleet.load(orinoco_cfg(), emu_for(w, seed));
    }
    assert_eq!(fleet.capacity(), warm, "same-shape reload grew the pool");
    fleet.run_batch(100_000_000);
    for (lane, (w, seed)) in BATCH.into_iter().enumerate() {
        let batched = format!("{:?}", fleet.core(lane).stats());
        assert_eq!(
            batched,
            fresh_stats(w, seed, orinoco_cfg()),
            "{w} seed {seed}: reused lane diverges from a fresh core"
        );
    }
}

#[test]
fn mixed_shapes_get_separate_lanes() {
    let tiny = {
        let mut cfg = orinoco_cfg();
        cfg.rob_entries = 24;
        cfg.iq_entries = 12;
        cfg.lq_entries = 6;
        cfg.sq_entries = 5;
        cfg.phys_regs = 40;
        cfg.vb_entries = 4;
        cfg
    };
    let mut fleet = Fleet::new();
    fleet.load(orinoco_cfg(), emu_for(Workload::GemmLike, 13));
    fleet.load(tiny.clone(), emu_for(Workload::GemmLike, 13));
    fleet.run_batch(100_000_000);
    assert_eq!(fleet.capacity(), 2);

    // Reload in the opposite order: each request must find its shape.
    fleet.clear();
    fleet.load(tiny.clone(), emu_for(Workload::MixLike, 5));
    fleet.load(orinoco_cfg(), emu_for(Workload::MixLike, 5));
    assert_eq!(fleet.capacity(), 2, "shape-matched reload grew the pool");
    fleet.run_batch(100_000_000);
    assert_eq!(
        format!("{:?}", fleet.core(0).stats()),
        fresh_stats(Workload::MixLike, 5, tiny),
        "tiny-shape lane diverges from a fresh core"
    );
    assert_eq!(
        format!("{:?}", fleet.core(1).stats()),
        fresh_stats(Workload::MixLike, 5, orinoco_cfg()),
        "base-shape lane diverges from a fresh core"
    );
}

#[test]
fn same_shape_different_seed_is_reused() {
    // config_for_seed in the verif campaigns varies only cfg.seed within
    // a shape; reuse must still rebuild all seeded state.
    let mut fleet = Fleet::new();
    let mut cfg = orinoco_cfg();
    cfg.seed = 1;
    fleet.load(cfg, emu_for(Workload::McfLike, 3));
    fleet.run_batch(100_000_000);
    fleet.clear();

    let mut cfg2 = orinoco_cfg();
    cfg2.seed = 99;
    fleet.load(cfg2.clone(), emu_for(Workload::McfLike, 3));
    assert_eq!(fleet.capacity(), 1, "seed-only change must not grow the pool");
    fleet.run_batch(100_000_000);
    assert_eq!(
        format!("{:?}", fleet.core(0).stats()),
        fresh_stats(Workload::McfLike, 3, cfg2),
        "reseeded lane diverges from a fresh core"
    );
}

#[test]
fn with_lane_parks_on_success_and_matches_fresh() {
    let mut fleet = Fleet::new();
    let stats = fleet.with_lane(orinoco_cfg(), emu_for(Workload::GemmLike, 13), |core| {
        format!("{:?}", core.run(100_000_000))
    });
    assert_eq!(stats, fresh_stats(Workload::GemmLike, 13, orinoco_cfg()));
    assert!(fleet.is_empty(), "with_lane must leave the fleet empty");
    assert_eq!(fleet.capacity(), 1, "the lane should be parked, not dropped");

    // The parked lane is revived for the next handout (no pool growth).
    let again = fleet.with_lane(orinoco_cfg(), emu_for(Workload::McfLike, 3), |core| {
        format!("{:?}", core.run(100_000_000))
    });
    assert_eq!(again, fresh_stats(Workload::McfLike, 3, orinoco_cfg()));
    assert_eq!(fleet.capacity(), 1, "same-shape handout grew the pool");
}

#[test]
fn with_lane_discards_on_panic_and_stays_usable() {
    let mut fleet = Fleet::new();
    fleet.with_lane(orinoco_cfg(), emu_for(Workload::GemmLike, 13), |core| {
        core.run(100_000_000);
    });
    assert_eq!(fleet.capacity(), 1);

    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        fleet.with_lane(orinoco_cfg(), emu_for(Workload::McfLike, 3), |core| {
            // A deliberately absurd cycle budget: run_until cannot finish,
            // and the follow-up panic models a mid-run invariant failure.
            core.run_until(1);
            panic!("lane broke mid-run");
        })
    }));
    assert!(unwound.is_err(), "the body's panic must resume out of with_lane");
    assert!(fleet.is_empty());
    assert_eq!(fleet.capacity(), 0, "a panicked lane must be discarded, not parked");

    // The fleet itself survives and serves the next handout from scratch.
    let stats = fleet.with_lane(orinoco_cfg(), emu_for(Workload::MixLike, 5), |core| {
        format!("{:?}", core.run(100_000_000))
    });
    assert_eq!(stats, fresh_stats(Workload::MixLike, 5, orinoco_cfg()));
}

#[test]
fn discard_drops_the_lane_and_shifts_the_rest() {
    let mut fleet = Fleet::new();
    for (w, seed) in BATCH {
        fleet.load(orinoco_cfg(), emu_for(w, seed));
    }
    fleet.run_batch(100_000_000);
    let keep: Vec<String> =
        (0..BATCH.len()).map(|l| format!("{:?}", fleet.core(l).stats())).collect();
    fleet.discard(1);
    assert_eq!(fleet.lanes(), BATCH.len() - 1);
    assert_eq!(format!("{:?}", fleet.core(0).stats()), keep[0]);
    assert_eq!(format!("{:?}", fleet.core(1).stats()), keep[2]);
    assert_eq!(format!("{:?}", fleet.core(3).stats()), keep[4]);
}
