//! Parallel and phase-clustered sampling invariants: byte-identical
//! output across thread counts (including under injected worker panics),
//! spill-to-disk ≡ in-memory checkpoints, BBV/k-means clustering
//! properties, and phase-mode accuracy.

use orinoco_core::sample::{
    cluster_bbvs, collect_bbvs, run_sampled, run_sampled_spill, SampleConfig, SampledStats,
};
use orinoco_core::{CommitKind, Core, CoreConfig, SchedulerKind, StallCause};
use orinoco_isa::Emulator;
use orinoco_workloads::{long_program, phased_program, Workload};

fn orinoco() -> CoreConfig {
    CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco)
}

/// A heterogeneous, branchy program long enough for a dozen-plus strata.
fn workload() -> Emulator {
    long_program(13, 60_000)
}

fn scfg() -> SampleConfig {
    SampleConfig::new(500, 2_000, 5_000)
}

/// Full structural equality, field by field — stricter than comparing
/// `summary()` strings (which already round).
fn assert_identical(a: &SampledStats, b: &SampledStats, what: &str) {
    assert_eq!(a.summary(), b.summary(), "{what}: summary diverged");
    assert_eq!(a.total_insts, b.total_insts, "{what}");
    assert_eq!(a.detailed_insts, b.detailed_insts, "{what}");
    assert_eq!(a.warmup_insts, b.warmup_insts, "{what}");
    assert_eq!(a.est_cycles().to_bits(), b.est_cycles().to_bits(), "{what}");
    assert_eq!(a.cpi_ci95().to_bits(), b.cpi_ci95().to_bits(), "{what}");
    assert_eq!(a.intervals.len(), b.intervals.len(), "{what}");
    for (i, (x, y)) in a.intervals.iter().zip(&b.intervals).enumerate() {
        assert_eq!(x.start_inst, y.start_inst, "{what}: interval {i}");
        assert_eq!(x.insts, y.insts, "{what}: interval {i}");
        assert_eq!(x.cycles, y.cycles, "{what}: interval {i}");
        assert_eq!(x.weight, y.weight, "{what}: interval {i}");
        for c in StallCause::ALL {
            assert_eq!(
                x.taxonomy.count(c),
                y.taxonomy.count(c),
                "{what}: interval {i} cause {c:?}"
            );
        }
    }
    for (c, v) in a.scaled_taxonomy() {
        let w = b
            .scaled_taxonomy()
            .into_iter()
            .find(|(bc, _)| *bc == c)
            .expect("same cause set")
            .1;
        assert_eq!(v.to_bits(), w.to_bits(), "{what}: scaled taxonomy {c:?}");
    }
}

#[test]
fn parallel_matches_serial_byte_identical() {
    let serial = run_sampled(workload(), orinoco(), &scfg());
    assert!(serial.intervals.len() >= 8, "want a real interval count");
    for threads in [4usize, 8] {
        let par = run_sampled(workload(), orinoco(), &scfg().with_threads(threads));
        assert_identical(&serial, &par, &format!("threads={threads}"));
    }
}

#[test]
fn parallel_matches_serial_with_warm_horizon_and_phases() {
    let base = scfg().with_warm_horizon(3_000).phases(4);
    let serial = run_sampled(workload(), orinoco(), &base);
    let par = run_sampled(workload(), orinoco(), &base.with_threads(8));
    assert_identical(&serial, &par, "phases+horizon threads=8");
}

#[test]
fn worker_panic_discards_lane_and_retries_deterministically() {
    let clean = run_sampled(workload(), orinoco(), &scfg());
    // Chaos fires on the first attempt of interval 1 only; the retry must
    // land on a byte-identical result, at every thread count.
    for threads in [1usize, 4, 8] {
        let chaotic = run_sampled(
            workload(),
            orinoco(),
            &scfg().with_threads(threads).with_chaos_panic(1),
        );
        assert_identical(&clean, &chaotic, &format!("chaos threads={threads}"));
    }
}

#[test]
fn spill_to_disk_equals_in_memory() {
    let dir = std::env::temp_dir().join(format!("orinoco-spill-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create spill dir");
    let in_mem = run_sampled(workload(), orinoco(), &scfg().with_threads(4));
    let spilled = run_sampled_spill(workload(), orinoco(), &scfg().with_threads(4), &dir);
    assert_identical(&in_mem, &spilled, "spill");
    // The spill directory holds one decodable ORCKPT1 file per interval.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("read spill dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    assert_eq!(files.len(), in_mem.intervals.len());
    for f in &files {
        orinoco_isa::EmuCheckpoint::read_file(f).expect("spilled checkpoint decodes");
    }
    std::fs::remove_dir_all(&dir).expect("cleanup spill dir");
}

#[test]
fn phases_cut_intervals_and_track_full_run() {
    // Phase clustering extrapolates each representative window to its
    // whole cluster, so the window must *cover* its stratum (SimPoint
    // style): detail ≈ period − warmup. A window much smaller than the
    // period sub-samples a stratum that mixes phases and biases hard.
    let pcfg = SampleConfig::new(500, 4_000, 5_000);
    let emu = phased_program(5, 40);
    let full = Core::new(phased_program(5, 40), orinoco())
        .run(500_000_000)
        .clone();
    let stratified = run_sampled(emu, orinoco(), &pcfg);
    let clustered = run_sampled(phased_program(5, 40), orinoco(), &pcfg.phases(12));
    assert!(
        clustered.intervals.len() < stratified.intervals.len(),
        "phase clustering must spend fewer detailed intervals ({} vs {})",
        clustered.intervals.len(),
        stratified.intervals.len()
    );
    // Weights stand in for the strata the representatives cover.
    assert!(clustered.weight_sum() >= stratified.intervals.len() as u64);
    let full_ipc = full.ipc();
    let err = (clustered.est_ipc() - full_ipc).abs() / full_ipc;
    assert!(
        err < 0.05,
        "phase-clustered IPC {} vs full {} ({:.2}% off)",
        clustered.est_ipc(),
        full_ipc,
        err * 100.0
    );
}

#[test]
fn phases_one_degenerates_to_single_interval() {
    let est = run_sampled(workload(), orinoco(), &scfg().phases(1));
    assert_eq!(est.intervals.len(), 1);
    assert!(est.intervals[0].weight > 1);
    assert!(est.est_ipc() > 0.1);
}

#[test]
fn bbv_strata_cover_the_program() {
    let emu = workload();
    let total = {
        let mut e = workload();
        while e.step().is_some() {}
        e.executed()
    };
    let period = 5_000u64;
    let bbvs = collect_bbvs(emu, period);
    assert_eq!(bbvs.len() as u64, total.div_ceil(period));
    for (i, v) in bbvs.iter().enumerate() {
        // Code half (all but the trailing novelty dim) is L1-normalized;
        // the novelty dim is a fraction in [0, 1].
        let (code, novelty) = v.split_at(v.len() - 1);
        let l1: f64 = code.iter().sum();
        assert!((l1 - 1.0).abs() < 1e-9, "stratum {i} code half not L1-normalized: {l1}");
        assert!(v.iter().all(|&x| x >= 0.0));
        assert!(novelty[0] <= 1.0, "stratum {i} novelty out of range: {}", novelty[0]);
    }
    // Working-set novelty decays: the first stratum first-touches its
    // lines, later strata revisit them.
    assert!(bbvs[0][bbvs[0].len() - 1] > bbvs[bbvs.len() - 1][bbvs[0].len() - 1]);
}

#[test]
fn kmeans_is_deterministic_and_weights_sum() {
    let bbvs = collect_bbvs(phased_program(9, 30), 4_000);
    assert!(bbvs.len() >= 8);
    for k in [1usize, 2, 4, 7, bbvs.len(), bbvs.len() + 5] {
        let a = cluster_bbvs(&bbvs, k, 42);
        let b = cluster_bbvs(&bbvs, k, 42);
        assert_eq!(a, b, "k={k}: clustering must be deterministic");
        let wsum: u64 = a.iter().map(|&(_, w)| w).sum();
        assert_eq!(wsum, bbvs.len() as u64, "k={k}: weights must sum to n");
        assert!(a.len() <= k.min(bbvs.len()));
        assert!(!a.is_empty());
        // Representatives are distinct, sorted, in range.
        for win in a.windows(2) {
            assert!(win[0].0 < win[1].0);
        }
        assert!(a.iter().all(|&(i, _)| i < bbvs.len()));
    }
    // Different seeds may pick different clusterings, but stay valid.
    let other = cluster_bbvs(&bbvs, 3, 1234);
    let wsum: u64 = other.iter().map(|&(_, w)| w).sum();
    assert_eq!(wsum, bbvs.len() as u64);
}

#[test]
fn kmeans_one_cluster_picks_most_representative() {
    // Construct vectors where index 1 is the obvious medoid: two outliers
    // and two points near the mean.
    let bbvs = vec![
        vec![1.0, 0.0, 0.0],
        vec![0.4, 0.3, 0.3],
        vec![0.0, 1.0, 0.0],
        vec![0.45, 0.25, 0.3],
    ];
    let reps = cluster_bbvs(&bbvs, 1, 7);
    assert_eq!(reps.len(), 1);
    assert_eq!(reps[0].1, 4);
    // Mean is (0.4625, 0.3875? ...) — nearest member is one of the two
    // central points, never an outlier.
    assert!(reps[0].0 == 1 || reps[0].0 == 3);
}

#[test]
fn empty_bbvs_cluster_to_nothing() {
    assert!(cluster_bbvs(&[], 3, 9).is_empty());
}

#[test]
fn threads_zero_means_auto_and_still_matches() {
    let serial = run_sampled(
        Workload::ExchangeLike.build(7, 1),
        orinoco(),
        &SampleConfig::new(500, 2_000, 10_000),
    );
    let auto = run_sampled(
        Workload::ExchangeLike.build(7, 1),
        orinoco(),
        &SampleConfig::new(500, 2_000, 10_000).with_threads(0),
    );
    assert_identical(&serial, &auto, "threads=0");
}
