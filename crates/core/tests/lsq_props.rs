//! Property test: the LSQ's store-to-load forwarding search, replay
//! detection and non-speculative promotion match a naive O(LQ×SQ)
//! reference that rescans every queue entry with explicit sequence
//! numbers, under random interleavings of allocation, address
//! resolution, commit, squash and slot recycling.

use orinoco_core::{LoadSearch, Lsq};
use orinoco_util::prop;
use std::collections::{HashMap, HashSet, VecDeque};

const LQ: usize = 8;
const SQ: usize = 6;
/// Small address pool so aliases are common.
const ADDRS: [u64; 4] = [0x100, 0x140, 0x180, 0x1C0];

struct LoadModel {
    seq: u64,
    rob: usize,
    addr: Option<u64>,
    translated: bool,
    fwd_seq: Option<u64>,
    /// SQ slots this load still speculates past.
    pending: HashSet<usize>,
}

struct StoreModel {
    seq: u64,
    rob: usize,
    addr: Option<u64>,
}

#[derive(Default)]
struct Model {
    loads: HashMap<usize, LoadModel>,
    stores: HashMap<usize, StoreModel>,
    /// SQ FIFO order, oldest first.
    fifo: VecDeque<usize>,
    next_seq: u64,
}

impl Model {
    /// Naive forwarding search: the youngest older resolved store to the
    /// same address.
    fn forward_for(&self, seq: u64, addr: u64) -> Option<u64> {
        self.stores
            .values()
            .filter(|s| s.seq < seq && s.addr == Some(addr))
            .map(|s| s.seq)
            .max()
    }

    fn check(&self, lsq: &Lsq) {
        for (&slot, m) in &self.loads {
            let want = m.addr.is_some() && m.translated && m.pending.is_empty();
            assert_eq!(lsq.load_nonspeculative(slot), want, "load slot {slot}");
            let e = lsq.load(slot).expect("model load live");
            assert_eq!((e.seq, e.addr, e.fwd_seq), (m.seq, m.addr, m.fwd_seq));
        }
        assert_eq!(lsq.lq_len(), self.loads.len());
        assert_eq!(lsq.sq_len(), self.stores.len());
    }
}

#[test]
fn lsq_forwarding_and_replays_match_naive_reference() {
    prop::check("lsq_naive_reference", 0x15C0, |rng| {
        let mut lsq = Lsq::new(LQ, SQ);
        let mut m = Model::default();
        let steps = rng.gen_range(1..120usize);
        for _ in 0..steps {
            match rng.gen_range(0..6u8) {
                // Dispatch a load.
                0 => {
                    let seq = m.next_seq;
                    if let Some(slot) = lsq.alloc_load(seq as usize, seq) {
                        m.next_seq += 1;
                        m.loads.insert(
                            slot,
                            LoadModel {
                                seq,
                                rob: seq as usize,
                                addr: None,
                                translated: false,
                                fwd_seq: None,
                                pending: HashSet::new(),
                            },
                        );
                    }
                }
                // Dispatch a store.
                1 => {
                    let seq = m.next_seq;
                    if let Some(slot) = lsq.alloc_store(seq as usize, seq) {
                        m.next_seq += 1;
                        m.stores.insert(slot, StoreModel { seq, rob: seq as usize, addr: None });
                        m.fifo.push_back(slot);
                    }
                }
                // A load's AGU fires: forwarding must pick the youngest
                // older resolved same-address store; the pending set is
                // the older unresolved stores.
                2 => {
                    let unresolved: Vec<usize> = m
                        .loads
                        .iter()
                        .filter(|(_, l)| l.addr.is_none())
                        .map(|(&s, _)| s)
                        .collect();
                    if let Some(&slot) = unresolved.get(rng.gen_range(0..unresolved.len().max(1)))
                    {
                        let addr = ADDRS[rng.gen_range(0..ADDRS.len())];
                        let translated = rng.gen_range(0..8u8) != 0;
                        let seq = m.loads[&slot].seq;
                        let want_fwd = m.forward_for(seq, addr);
                        let got = lsq.load_agu(slot, addr, translated);
                        match want_fwd {
                            Some(store_seq) => {
                                assert_eq!(got, LoadSearch::Forward { store_seq })
                            }
                            None => assert_eq!(got, LoadSearch::Cache),
                        }
                        let pending: HashSet<usize> = m
                            .stores
                            .iter()
                            .filter(|(_, s)| s.seq < seq && s.addr.is_none())
                            .map(|(&s, _)| s)
                            .collect();
                        let l = m.loads.get_mut(&slot).expect("live");
                        l.addr = Some(addr);
                        l.translated = translated;
                        l.fwd_seq = want_fwd;
                        l.pending = pending;
                    }
                }
                // A store's AGU fires: replays are exactly the younger
                // same-address resolved loads not shielded by a younger
                // forwarding store.
                3 => {
                    let unresolved: Vec<usize> = m
                        .stores
                        .iter()
                        .filter(|(_, s)| s.addr.is_none())
                        .map(|(&s, _)| s)
                        .collect();
                    if let Some(&slot) = unresolved.get(rng.gen_range(0..unresolved.len().max(1)))
                    {
                        let addr = ADDRS[rng.gen_range(0..ADDRS.len())];
                        let store_seq = m.stores[&slot].seq;
                        let mut want: Vec<usize> = m
                            .loads
                            .values()
                            .filter(|l| {
                                l.seq > store_seq
                                    && l.addr == Some(addr)
                                    && l.fwd_seq.is_none_or(|f| f <= store_seq)
                            })
                            .map(|l| l.rob)
                            .collect();
                        want.sort_unstable();
                        let mut got = lsq.store_agu(slot, addr);
                        got.sort_unstable();
                        assert_eq!(got, want, "replay set for store seq {store_seq}");
                        m.stores.get_mut(&slot).expect("live").addr = Some(addr);
                        let replayed: HashSet<usize> = want.into_iter().collect();
                        for l in m.loads.values_mut() {
                            // Conflicting loads keep the bit; everyone
                            // else is released.
                            if !replayed.contains(&l.rob) {
                                l.pending.remove(&slot);
                            }
                        }
                    }
                }
                // Retire a load (commit or squash — the matrix treats
                // both as slot recycling).
                4 => {
                    let live: Vec<usize> = m.loads.keys().copied().collect();
                    if let Some(&slot) = live.get(rng.gen_range(0..live.len().max(1))) {
                        lsq.free_load(slot);
                        m.loads.remove(&slot);
                    }
                }
                // Store leaves the SQ: commit from the head (resolved
                // only) or squash from the tail, releasing its column.
                _ => {
                    if rng.gen::<bool>() {
                        if let Some(&head) = m.fifo.front() {
                            if m.stores[&head].addr.is_some() {
                                let e = lsq.commit_store_head(m.stores[&head].rob);
                                assert_eq!(e.seq, m.stores[&head].seq);
                                m.fifo.pop_front();
                                m.stores.remove(&head);
                                for l in m.loads.values_mut() {
                                    l.pending.remove(&head);
                                }
                            }
                        }
                    } else if let Some(&tail) = m.fifo.back() {
                        let tail_seq = m.stores[&tail].seq;
                        // A squash runs youngest-first: every younger load
                        // dies before the store does.
                        let victims: Vec<usize> = m
                            .loads
                            .iter()
                            .filter(|(_, l)| l.seq > tail_seq)
                            .map(|(&s, _)| s)
                            .collect();
                        for slot in victims {
                            lsq.free_load(slot);
                            m.loads.remove(&slot);
                        }
                        lsq.squash_store_tail(m.stores[&tail].rob);
                        m.fifo.pop_back();
                        m.stores.remove(&tail);
                        for l in m.loads.values_mut() {
                            l.pending.remove(&tail);
                        }
                    }
                }
            }
            m.check(&lsq);
        }
    });
}
