//! `Core::reset` reuse tests.
//!
//! The bench harness constructs one core per case and reuses it across
//! timed iterations through [`Core::reset`], so the reported throughput
//! and allocation counts are only meaningful if a reset core is
//! behaviourally indistinguishable from a freshly constructed one:
//! identical `SimStats` and identical lifecycle traces, run after run.

use orinoco_core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco_isa::Emulator;
use orinoco_workloads::Workload;

fn orinoco_cfg() -> CoreConfig {
    CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco)
}

fn emu_for(w: Workload, seed: u64) -> Emulator {
    let mut emu = w.build(seed, 1);
    emu.set_step_limit(5_000);
    emu
}

/// Runs `core` on a fresh emulator for `w` and returns the `SimStats`
/// Debug rendering plus the lifecycle-trace JSONL.
fn run_traced(core: &mut Core, w: Workload, seed: u64) -> (String, String) {
    core.reset(emu_for(w, seed));
    let stats = format!("{:?}", core.run(100_000_000));
    let trace = core.tracer().map(orinoco_core::Tracer::to_jsonl).unwrap_or_default();
    (stats, trace)
}

#[test]
fn reset_core_matches_fresh_core() {
    for w in [Workload::GemmLike, Workload::HashjoinLike, Workload::MemlatLike] {
        let mut fresh = Core::new(emu_for(w, 13), orinoco_cfg());
        fresh.enable_tracing(1 << 14);
        let fresh_stats = format!("{:?}", fresh.run(100_000_000));
        let fresh_trace = fresh.tracer().expect("tracing enabled").to_jsonl();

        // Dirty the reused core with a different workload first, so the
        // reset has real state to clear.
        let mut reused = Core::new(emu_for(Workload::ExchangeLike, 7), orinoco_cfg());
        reused.enable_tracing(1 << 14);
        let _ = reused.run(100_000_000);
        let (stats, trace) = run_traced(&mut reused, w, 13);
        assert_eq!(stats, fresh_stats, "{w}: SimStats diverge after reset");
        assert_eq!(trace, fresh_trace, "{w}: lifecycle trace diverges after reset");
    }
}

#[test]
fn repeated_resets_are_deterministic() {
    let mut core = Core::new(emu_for(Workload::McfLike, 3), orinoco_cfg());
    let (first, _) = run_traced(&mut core, Workload::McfLike, 3);
    for round in 0..3 {
        let (again, _) = run_traced(&mut core, Workload::McfLike, 3);
        assert_eq!(again, first, "round {round} diverged from the first run");
    }
}

#[test]
fn reset_switches_configs_cleanly_across_workloads() {
    // A tiny-queue core reset across very different workloads must keep
    // matching per-workload fresh runs (free lists, LSQ ring, rename map
    // and scheduler matrices all rebuilt to pristine order).
    let mut cfg = orinoco_cfg();
    cfg.rob_entries = 24;
    cfg.iq_entries = 12;
    cfg.lq_entries = 6;
    cfg.sq_entries = 5;
    cfg.phys_regs = 40;
    cfg.vb_entries = 4;
    let mut reused = Core::new(emu_for(Workload::StreamLike, 1), cfg.clone());
    for w in [Workload::MixLike, Workload::PerlLike, Workload::StreamLike] {
        reused.reset(emu_for(w, 5));
        let reused_stats = format!("{:?}", reused.run(100_000_000));
        let mut fresh = Core::new(emu_for(w, 5), cfg.clone());
        let fresh_stats = format!("{:?}", fresh.run(100_000_000));
        assert_eq!(reused_stats, fresh_stats, "{w}: reset run diverges from fresh run");
    }
}
