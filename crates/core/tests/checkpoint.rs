//! Architectural checkpoint/restore driving the detailed core: a restored
//! emulator must be timing-indistinguishable from the live emulator it
//! was checkpointed from, through serialization and back.

use orinoco_core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco_isa::{EmuCheckpoint, Emulator, HaltReason};
use orinoco_workloads::Workload;

fn orinoco() -> CoreConfig {
    CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco)
}

fn advanced(wl: Workload, seed: u64, steps: u64) -> Emulator {
    let mut emu = wl.build(seed, 1);
    for _ in 0..steps {
        emu.step();
    }
    emu
}

#[test]
fn restored_emulator_times_identically_to_the_original() {
    let emu = advanced(Workload::HashjoinLike, 17, 30_000);
    let direct = Core::new(emu.fork_rebased(), orinoco()).run(200_000_000).clone();

    let bytes = emu.checkpoint().to_bytes();
    let ck = EmuCheckpoint::from_bytes(&bytes).expect("roundtrips");
    let restored = Emulator::restore(emu.program().clone(), &ck);
    let resumed = Core::new(restored.fork_rebased(), orinoco()).run(200_000_000).clone();

    assert_eq!(direct.cycles, resumed.cycles);
    assert_eq!(direct.committed, resumed.committed);
}

#[test]
fn stitched_checkpoint_halves_cover_the_whole_program() {
    let mut full = Workload::XzLike.build(8, 1);
    let total = full.by_ref().count() as u64;

    let emu = advanced(Workload::XzLike, 8, 40_000);
    let head = emu.executed();
    let mut tail_emu = Emulator::restore(emu.program().clone(), &emu.checkpoint());
    let tail = tail_emu.by_ref().count() as u64;
    assert_eq!(tail_emu.halt_reason(), Some(HaltReason::Halted));
    assert_eq!(head + tail, total);
}

#[test]
fn checkpoint_restore_is_idempotent() {
    let emu = advanced(Workload::PerlLike, 3, 25_000);
    let ck = emu.checkpoint();
    let once = Emulator::restore(emu.program().clone(), &ck);
    let twice = Emulator::restore(emu.program().clone(), &once.checkpoint());
    let a = Core::new(once.fork_rebased(), orinoco()).run(200_000_000).clone();
    let b = Core::new(twice.fork_rebased(), orinoco()).run(200_000_000).clone();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed, b.committed);
}

#[test]
fn corrupted_checkpoint_bytes_are_rejected() {
    let emu = advanced(Workload::ExchangeLike, 1, 5_000);
    let bytes = emu.checkpoint().to_bytes();
    assert!(EmuCheckpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err(), "truncated");
    assert!(EmuCheckpoint::from_bytes(&bytes[2..]).is_err(), "bad magic");
}
