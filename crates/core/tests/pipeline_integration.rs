//! End-to-end pipeline tests: every scheduler and commit policy drains
//! real workloads to completion with exact architectural bookkeeping
//! (enforced inside `Core::run`), and the relative performance shapes of
//! the paper hold.

use orinoco_core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco_workloads::Workload;

const MAX_CYCLES: u64 = 200_000_000;

fn run(w: Workload, cfg: CoreConfig) -> orinoco_core::SimStats {
    let emu = w.build(13, 1);
    let mut core = Core::new(emu, cfg);
    core.run(MAX_CYCLES).clone()
}

fn run_small(w: Workload, cfg: CoreConfig) -> orinoco_core::SimStats {
    // Integration tests run unoptimised: keep runs short by capping the
    // emulator's dynamic length instead of rebuilding kernels.
    let mut emu = w.build(13, 1);
    emu.set_step_limit(12_000);
    let mut core = Core::new(emu, cfg);
    core.run(MAX_CYCLES).clone()
}

#[test]
fn every_scheduler_drains_cleanly() {
    for sched in SchedulerKind::ALL {
        let cfg = CoreConfig::base().with_scheduler(sched);
        let stats = run_small(Workload::ExchangeLike, cfg);
        assert!(stats.committed > 0, "{sched:?} committed nothing");
        assert!(stats.ipc() > 0.1, "{sched:?} ipc {}", stats.ipc());
    }
}

#[test]
fn every_commit_policy_drains_cleanly() {
    for commit in CommitKind::ALL {
        let cfg = CoreConfig::base().with_commit(commit);
        let stats = run_small(Workload::HashjoinLike, cfg);
        assert!(stats.committed > 0, "{commit:?} committed nothing");
    }
    // The ablations too.
    for cfg in [
        CoreConfig::base().with_commit(CommitKind::Vb).without_ecl(),
        CoreConfig::base().with_commit(CommitKind::Br).without_ecl(),
        CoreConfig::base().with_commit(CommitKind::Spec).without_rob_reclaim(),
    ] {
        let stats = run_small(Workload::HashjoinLike, cfg);
        assert!(stats.committed > 0);
    }
}

#[test]
fn all_workloads_drain_on_the_full_design() {
    let cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco);
    for w in Workload::ALL {
        let stats = run_small(w, cfg.clone());
        assert!(stats.committed > 10_000, "{w} committed {}", stats.committed);
    }
}

#[test]
fn vb_capacity_gates_post_commit_execution() {
    // Shrinking the validation buffer must not break anything and must
    // not help performance.
    let mut tiny = CoreConfig::base().with_commit(CommitKind::Vb);
    tiny.vb_entries = 2;
    let big = CoreConfig::base().with_commit(CommitKind::Vb);
    let a = run_small(Workload::StreamLike, tiny);
    let b = run_small(Workload::StreamLike, big);
    assert!(a.ipc() <= b.ipc() * 1.01, "tiny VB {} vs default {}", a.ipc(), b.ipc());
}

#[test]
fn shift_and_orinoco_schedule_identically() {
    // The collapsible queue and the bit-count age matrix produce the same
    // ideal issue order; their IPC must match exactly.
    let a = run_small(
        Workload::XzLike,
        CoreConfig::base().with_scheduler(SchedulerKind::Shift),
    );
    let b = run_small(
        Workload::XzLike,
        CoreConfig::base().with_scheduler(SchedulerKind::Orinoco),
    );
    assert_eq!(a.cycles, b.cycles, "SHIFT {} vs Orinoco {}", a.cycles, b.cycles);
}

#[test]
fn ordered_issue_beats_random() {
    // RAND perturbs the temporal ordering; ideal ordering should not lose.
    let rand = run_small(
        Workload::MixLike,
        CoreConfig::base().with_scheduler(SchedulerKind::Rand),
    );
    let orinoco = run_small(
        Workload::MixLike,
        CoreConfig::base().with_scheduler(SchedulerKind::Orinoco),
    );
    assert!(
        orinoco.ipc() >= rand.ipc() * 0.98,
        "orinoco {} vs rand {}",
        orinoco.ipc(),
        rand.ipc()
    );
}

#[test]
fn ooo_commit_beats_in_order_on_divide_chains() {
    // mix_like parks divides at the ROB head: the canonical win for
    // unordered commit.
    let ioc = run_small(Workload::MixLike, CoreConfig::base());
    let ooo = run_small(
        Workload::MixLike,
        CoreConfig::base().with_commit(CommitKind::Orinoco),
    );
    assert!(
        ooo.ipc() > ioc.ipc() * 1.02,
        "ooo {} should beat ioc {}",
        ooo.ipc(),
        ioc.ipc()
    );
}

#[test]
fn ooo_commit_reduces_full_window_stalls() {
    let ioc = run_small(Workload::LinkedlistLike, CoreConfig::base());
    let ooo = run_small(
        Workload::LinkedlistLike,
        CoreConfig::base().with_commit(CommitKind::Orinoco),
    );
    let a = ioc.dispatch_stalls.full_window_stalls();
    let b = ooo.dispatch_stalls.full_window_stalls();
    assert!(b < a, "full-window stalls {b} should drop below {a}");
}

#[test]
fn exceptions_are_handled_precisely() {
    let mut cfg = CoreConfig::base().with_commit(CommitKind::Orinoco);
    cfg.pagefault_per_million = 500; // aggressive fault injection
    let stats = run_small(Workload::StreamLike, cfg);
    assert!(stats.exceptions > 0, "no faults injected");
    // Architectural checksum inside run() already proves precision; the
    // squashes must have re-executed everything exactly once.
    assert!(stats.squashed > 0);
}

#[test]
fn exceptions_with_in_order_commit_too() {
    let mut cfg = CoreConfig::base();
    cfg.pagefault_per_million = 500;
    let stats = run_small(Workload::XzLike, cfg);
    assert!(stats.exceptions > 0);
}

#[test]
fn replay_traps_fire_on_store_load_aliases() {
    // xz_like stores into locations it later reloads with short distance:
    // speculation past unresolved stores must occasionally replay.
    let stats = run_small(
        Workload::XzLike,
        CoreConfig::base().with_commit(CommitKind::Orinoco),
    );
    // Not asserting replays > 0 strictly (forwarding may win), but the
    // machinery must not deadlock and commits must be exact — enforced in
    // run(). Record the count for visibility.
    let _ = stats.replays;
}

#[test]
fn branch_heavy_workload_recovers_from_mispredicts() {
    let stats = run_small(Workload::PerlLike, CoreConfig::base());
    assert!(stats.fetch.mispredicts > 10, "perl_like should mispredict");
    assert!(stats.fetch.wrong_path_insts > 0, "wrong path never exercised");
    assert!(stats.squashed > 0);
}

#[test]
fn deterministic_across_runs() {
    let a = run_small(Workload::DeepsjengLike, CoreConfig::base());
    let b = run_small(Workload::DeepsjengLike, CoreConfig::base());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.fetch.mispredicts, b.fetch.mispredicts);
}

#[test]
fn pro_and_ultra_configs_run() {
    for cfg in [CoreConfig::pro(), CoreConfig::ultra()] {
        let stats = run_small(Workload::StencilLike, cfg);
        assert!(stats.committed > 10_000);
    }
}

#[test]
fn wider_core_is_not_slower() {
    let base = run_small(Workload::GemmLike, CoreConfig::base());
    let ultra = run_small(Workload::GemmLike, CoreConfig::ultra());
    assert!(
        ultra.ipc() >= base.ipc() * 0.95,
        "ultra {} vs base {}",
        ultra.ipc(),
        base.ipc()
    );
}

#[test]
fn criticality_scheduler_runs_and_tags() {
    let cfg = CoreConfig::base().with_scheduler(SchedulerKind::CriOrinoco);
    let stats = run_small(Workload::McfLike, cfg);
    assert!(stats.committed > 10_000);
}

#[test]
#[ignore = "long; run with --ignored or --include-ignored"]
fn full_length_run_on_one_workload() {
    // One full-length (scale 1) run to exercise long-horizon behaviour:
    // cache warmup, predictor saturation, MSHR churn.
    let stats = run(
        Workload::ExchangeLike,
        CoreConfig::base().with_commit(CommitKind::Orinoco),
    );
    assert!(stats.committed > 100_000);
    assert!(stats.ipc() > 0.5, "exchange_like ipc {}", stats.ipc());
}

#[test]
fn limited_commit_depth_caps_ooo_gains() {
    // §6.2: a limited commit depth hinders reaping the full benefit.
    let unlimited = run_small(
        Workload::MixLike,
        CoreConfig::base().with_commit(CommitKind::Orinoco),
    );
    let shallow = run_small(
        Workload::MixLike,
        CoreConfig::base()
            .with_commit(CommitKind::Orinoco)
            .with_commit_depth(8),
    );
    let ioc = run_small(Workload::MixLike, CoreConfig::base());
    assert!(
        shallow.ipc() <= unlimited.ipc() * 1.001,
        "depth-8 {} should not beat unlimited {}",
        shallow.ipc(),
        unlimited.ipc()
    );
    assert!(
        shallow.ipc() >= ioc.ipc() * 0.999,
        "depth-8 {} should not lose to IOC {}",
        shallow.ipc(),
        ioc.ipc()
    );
}

#[test]
fn commit_depth_of_commit_width_approximates_in_order() {
    // Scanning only the CW oldest entries gives in-order-like behaviour:
    // same bandwidth, tiny reordering freedom within the window.
    let cfg = CoreConfig::base();
    let cw = cfg.commit_width;
    let shallow = run_small(
        Workload::StreamLike,
        cfg.clone().with_commit(CommitKind::Orinoco).with_commit_depth(cw),
    );
    let ioc = run_small(Workload::StreamLike, cfg);
    let ratio = shallow.ipc() / ioc.ipc();
    assert!(
        (0.95..=1.15).contains(&ratio),
        "depth-CW {} vs IOC {}",
        shallow.ipc(),
        ioc.ipc()
    );
}

#[test]
fn banked_dispatch_runs_and_costs_little() {
    let plain = run_small(Workload::ExchangeLike, CoreConfig::base());
    let banked = run_small(
        Workload::ExchangeLike,
        CoreConfig::base().with_banked_dispatch(),
    );
    // §4.3: load-balanced steering makes the single-port-per-bank
    // constraint nearly free.
    assert!(
        banked.ipc() >= plain.ipc() * 0.97,
        "banked {} vs plain {}",
        banked.ipc(),
        plain.ipc()
    );
    assert_eq!(banked.committed, plain.committed);
}

#[test]
fn calls_and_returns_use_the_ras() {
    // A call/return-heavy program: `jal` pushes the RAS, `jalr` pops it.
    // With a 16-deep RAS and call depth 1, returns should be predicted
    // nearly perfectly; the run must drain with exact commit bookkeeping.
    use orinoco_isa::{ArchReg, Emulator, ProgramBuilder};
    let mut b = ProgramBuilder::new();
    let x = |i: u8| ArchReg::int(i);
    let (ctr, ra, acc) = (x(1), x(2), x(3));
    b.li(ctr, 2_000);
    let top = b.label();
    let func = b.label();
    b.bind(top);
    b.jal(ra, func); // call
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    b.halt();
    b.bind(func);
    b.addi(acc, acc, 1);
    b.xor(acc, acc, ctr);
    b.jalr(ArchReg::ZERO, ra); // return
    let emu = Emulator::new(b.build(), 4096);

    let mut core = Core::new(emu, CoreConfig::base().with_commit(CommitKind::Orinoco));
    let stats = core.run(MAX_CYCLES);
    assert!(stats.committed > 10_000);
    assert!(stats.fetch.branches > 4_000);
    // Returns predicted by the RAS: mispredict rate must be tiny.
    let rate = stats.fetch.mispredicts as f64 / stats.fetch.branches as f64;
    assert!(rate < 0.02, "RAS should make returns predictable: {rate}");
}

#[test]
fn deep_recursion_overflows_the_ras_gracefully() {
    // Call depth 24 exceeds the 16-entry RAS: the oldest entries are
    // lost, so some returns mispredict — but the pipeline must still
    // recover precisely every time.
    use orinoco_isa::{ArchReg, Emulator, ProgramBuilder};
    let mut b = ProgramBuilder::new();
    let x = |i: u8| ArchReg::int(i);
    let (ctr, depth, sp, tmp) = (x(1), x(2), x(10), x(4));
    // Iterative "recursion": push return indices onto a software stack via
    // jal chains of depth 24.
    b.li(ctr, 300);
    let top = b.label();
    b.bind(top);
    b.li(depth, 24);
    b.li(sp, 2048);
    let call_loop = b.label();
    let unwind = b.label();
    let fn_lbl = b.label();
    b.bind(call_loop);
    b.jal(x(3), fn_lbl);
    b.addi(depth, depth, -1);
    b.bne(depth, ArchReg::ZERO, call_loop);
    b.jal(ArchReg::ZERO, unwind);
    b.bind(fn_lbl);
    b.st(x(3), sp, 0); // spill return index
    b.addi(sp, sp, 8);
    b.addi(tmp, tmp, 1);
    b.addi(sp, sp, -8);
    b.ld(x(3), sp, 0);
    b.jalr(ArchReg::ZERO, x(3));
    b.bind(unwind);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    b.halt();
    let emu = Emulator::new(b.build(), 8192);
    let mut core = Core::new(emu, CoreConfig::base());
    let stats = core.run(MAX_CYCLES);
    assert!(stats.committed > 10_000);
    // Precision is asserted inside run(); here we only require progress.
}

#[test]
fn split_iqs_run_and_cost_capacity_efficiency() {
    // §5: separate per-type IQs decentralise the matrices at the cost of
    // capacity efficiency — they must never *beat* the unified IQ by much
    // and typically trail it.
    let mut worse = 0;
    for w in [Workload::GemmLike, Workload::DeepsjengLike, Workload::XzLike] {
        let unified = run_small(w, CoreConfig::base());
        let split = run_small(w, CoreConfig::base().with_split_iq());
        assert!(
            split.ipc() <= unified.ipc() * 1.05,
            "{w}: split {} unexpectedly beats unified {}",
            split.ipc(),
            unified.ipc()
        );
        assert!(split.committed == unified.committed);
        if split.ipc() < unified.ipc() * 0.995 {
            worse += 1;
        }
    }
    assert!(worse >= 1, "capacity inefficiency should show somewhere");
}

#[test]
fn split_iqs_work_with_full_orinoco() {
    let cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco)
        .with_split_iq();
    let stats = run_small(Workload::MixLike, cfg);
    assert!(stats.committed > 10_000);
}

#[test]
fn tso_lockdowns_withhold_and_release_invalidation_acks() {
    // Drive the gather workload under Orinoco commit while a simulated
    // remote core invalidates lines — including ones under lockdown.
    let mut emu = Workload::LinkedlistLike.build(3, 1);
    emu.set_step_limit(15_000);
    let cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco);
    let mut core = Core::new(emu, cfg);
    let mut withheld = 0u64;
    let mut engaged = false;
    while !core.finished() && core.cycle() < 50_000_000 {
        core.step();
        if core.active_lockdowns() > 0 {
            engaged = true;
        }
        if core.cycle().is_multiple_of(32) {
            if let Some(line) = core.any_locked_line() {
                // An invalidation to a locked line must NOT be acked now.
                assert!(!core.inject_invalidation(line), "lockdown leaked an ack");
                withheld += 1;
            }
        }
    }
    assert!(engaged, "lockdowns never engaged");
    assert!(withheld > 0, "no invalidation ever hit a locked line");
    // The run drained: every withheld ack was eventually released (the
    // lockdown table panics on leaked releases, and the commit checksum
    // inside run()/finished() held).
    assert_eq!(core.active_lockdowns(), 0, "lockdowns leaked at drain");
}
