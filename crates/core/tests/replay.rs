//! Trace replay as a pipeline frontend: driving the detailed core from a
//! `CAP1` capture must be cycle-for-cycle identical to live fetch, across
//! scheduler/commit configurations, including the synthetic wrong-path
//! activity after mispredicts.

use orinoco_core::{
    capture_program, CommitKind, Core, CoreConfig, FetchSource, ReplayStream, SchedulerKind,
};
use orinoco_workloads::Workload;

fn orinoco() -> CoreConfig {
    CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco)
}

fn baseline() -> CoreConfig {
    CoreConfig::base()
        .with_scheduler(SchedulerKind::Age)
        .with_commit(CommitKind::InOrder)
}

#[test]
fn replay_timing_is_identical_to_live_fetch() {
    for wl in [Workload::HashjoinLike, Workload::PerlLike] {
        let bytes = capture_program(&mut wl.build(21, 1));
        for cfg in [orinoco(), baseline()] {
            let live = Core::new(wl.build(21, 1), cfg.clone()).run(200_000_000).clone();
            let stream = ReplayStream::from_bytes(bytes.clone()).unwrap();
            let mut core = Core::new(stream, cfg);
            let replay = core.run(200_000_000).clone();
            assert_eq!(live.cycles, replay.cycles, "{wl:?}");
            assert_eq!(live.committed, replay.committed, "{wl:?}");
            assert!(core.finished(), "{wl:?}");
            assert!(matches!(core.source(), FetchSource::Replay(_)));
        }
    }
}

#[test]
fn replay_reproduces_wrong_path_activity() {
    // The capture stores resolved branch outcomes, not predictions; the
    // replay core must still mispredict and fetch synthetic wrong-path
    // instructions exactly as the live core did.
    let bytes = capture_program(&mut Workload::PerlLike.build(5, 1));
    let live = Core::new(Workload::PerlLike.build(5, 1), orinoco()).run(200_000_000).clone();
    let stream = ReplayStream::from_bytes(bytes).unwrap();
    let replay = Core::new(stream, orinoco()).run(200_000_000).clone();
    assert!(live.fetch.mispredicts > 0, "workload is supposed to mispredict");
    assert!(live.fetch.wrong_path_insts > 0);
    assert_eq!(live.fetch.branches, replay.fetch.branches);
    assert_eq!(live.fetch.mispredicts, replay.fetch.mispredicts);
    assert_eq!(live.fetch.wrong_path_insts, replay.fetch.wrong_path_insts);
}

#[test]
fn step_limited_replay_runs_a_prefix() {
    let bytes = capture_program(&mut Workload::ExchangeLike.build(3, 1));
    let mut stream = ReplayStream::from_bytes(bytes).unwrap();
    stream.set_step_limit(20_000);
    let stats = Core::new(stream, orinoco()).run(200_000_000).clone();
    assert_eq!(stats.committed, 20_000);
}
