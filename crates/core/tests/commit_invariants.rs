//! Integration tests for the unordered-commit invariants (§3.2): the
//! commit scheduler must never grant an instruction while an older live
//! instruction is still speculative, every correct-path instruction must
//! commit exactly once, and non-collapsible queue slots freed out of
//! order must never be read again stale.
//!
//! The pipeline is stepped manually (not via [`Core::run`]) so the naive
//! O(n²) cross-check [`Core::debug_verify_commit_invariants`] can run
//! every cycle against the live ROB state, independently of the matrix
//! logic it verifies.

use orinoco_core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco_isa::{ArchReg, Emulator, ProgramBuilder};
use orinoco_util::Rng;

fn x(i: u8) -> ArchReg {
    ArchReg::int(i)
}

/// Small always-terminating random program (counted loop of mixed ops).
fn random_program(rng: &mut Rng) -> Emulator {
    let mut b = ProgramBuilder::new();
    for i in 1..10u8 {
        b.li(x(i), rng.gen_range(-1000..1000));
    }
    b.li(x(10), rng.gen_range(0..4096) & !7);
    b.li(x(15), rng.gen_range(10..40));
    let top = b.label();
    b.bind(top);
    for _ in 0..rng.gen_range(4..16) {
        let rd = x(rng.gen_range(1..10));
        let rs1 = x(rng.gen_range(1..11));
        let rs2 = x(rng.gen_range(1..11));
        match rng.gen_range(0..8) {
            0 => {
                b.add(rd, rs1, rs2);
            }
            1 => {
                b.mul(rd, rs1, rs2);
            }
            2 => {
                b.div(rd, rs1, rs2);
            }
            3 => {
                b.ld(rd, x(10), rng.gen_range(0..256) * 8);
            }
            4 => {
                b.st(rs1, x(10), rng.gen_range(0..256) * 8);
            }
            5 => {
                // Data-dependent forward branch: speculation pressure.
                let skip = b.label();
                b.andi(x(11), rs1, 3);
                b.bne(x(11), ArchReg::ZERO, skip);
                b.addi(rd, rd, 7);
                b.bind(skip);
            }
            6 => {
                b.fence();
            }
            _ => {
                b.xor(rd, rs1, rs2);
            }
        }
    }
    b.addi(x(15), x(15), -1);
    b.bne(x(15), ArchReg::ZERO, top);
    b.halt();
    let mut emu = Emulator::new(b.build(), 1 << 16);
    for i in 0..(1u64 << 10) {
        emu.store_word(i * 8, rng.gen::<u64>());
    }
    emu
}

fn tiny(mut cfg: CoreConfig) -> CoreConfig {
    cfg.rob_entries = 24;
    cfg.iq_entries = 12;
    cfg.lq_entries = 6;
    cfg.sq_entries = 5;
    cfg.phys_regs = 40;
    cfg.vb_entries = 4;
    cfg
}

/// Steps the core to completion, cross-checking the commit invariants
/// every cycle. Returns (cycles, commit events).
fn run_checked(mut core: Core, max_cycles: u64) -> (u64, Vec<orinoco_core::CommitEvent>) {
    core.enable_commit_trace();
    let mut events = Vec::new();
    let mut cycles = 0;
    while !core.finished() {
        assert!(cycles < max_cycles, "deadlock after {cycles} cycles");
        core.step();
        cycles += 1;
        core.debug_verify_commit_invariants();
        events.extend(core.drain_commit_trace());
    }
    assert_eq!(
        events.len() as u64,
        core.emulator().executed(),
        "commit count != architecturally executed count"
    );
    (cycles, events)
}

/// The scheduler never grants commit past an unresolved older speculative
/// instruction, on any cycle, across the stress configurations.
#[test]
fn never_commits_past_unresolved_older_speculative() {
    let mut rng = Rng::seed_from_u64(0x1217_0001);
    type ConfigMaker = fn() -> CoreConfig;
    let configs: [(&str, ConfigMaker); 5] = [
        ("orinoco-base", || {
            CoreConfig::base()
                .with_scheduler(SchedulerKind::Orinoco)
                .with_commit(CommitKind::Orinoco)
        }),
        ("orinoco-tiny", || {
            tiny(
                CoreConfig::base()
                    .with_scheduler(SchedulerKind::Orinoco)
                    .with_commit(CommitKind::Orinoco),
            )
        }),
        ("orinoco-faults", || {
            let mut c = CoreConfig::base()
                .with_scheduler(SchedulerKind::Orinoco)
                .with_commit(CommitKind::Orinoco);
            c.pagefault_per_million = 2_000;
            c
        }),
        ("agesched", || {
            CoreConfig::base()
                .with_scheduler(SchedulerKind::Age)
                .with_commit(CommitKind::Orinoco)
        }),
        // Limited commit depth: the walk's depth-window path is
        // cross-checked against the matrix scan every cycle.
        ("orinoco-depth8", || {
            tiny(
                CoreConfig::base()
                    .with_scheduler(SchedulerKind::Orinoco)
                    .with_commit(CommitKind::Orinoco),
            )
            .with_commit_depth(8)
        }),
    ];
    for trial in 0..4 {
        let emu = random_program(&mut rng);
        for (label, mk) in configs {
            let core = Core::new(emu.clone(), mk());
            let (cycles, _) = run_checked(core, 10_000_000);
            assert!(cycles > 0, "trial {trial} {label}");
        }
    }
}

/// Every correct-path instruction commits exactly once: the sequence
/// numbers in the commit trace are dense (0..n with no gap and no
/// duplicate), even though their arrival order is scrambled.
#[test]
fn commit_trace_is_dense_and_exactly_once() {
    let mut rng = Rng::seed_from_u64(0x1217_0002);
    for _ in 0..4 {
        let emu = random_program(&mut rng);
        let cfg = CoreConfig::base()
            .with_scheduler(SchedulerKind::Orinoco)
            .with_commit(CommitKind::Orinoco);
        let (_, events) = run_checked(Core::new(emu, cfg), 10_000_000);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        for (want, got) in seqs.iter().enumerate() {
            assert_eq!(*got, want as u64, "gap or duplicate in commit sequence");
        }
    }
}

/// Unordered commit actually happens (the trace records commits ahead of
/// an older live instruction) — the invariants above are tested against
/// real out-of-order behaviour, not a degenerate in-order run.
#[test]
fn unordered_commits_are_observed() {
    let mut rng = Rng::seed_from_u64(0x1217_0003);
    let mut ooo = 0u64;
    for _ in 0..4 {
        let emu = random_program(&mut rng);
        let cfg = CoreConfig::base()
            .with_scheduler(SchedulerKind::Orinoco)
            .with_commit(CommitKind::Orinoco);
        let (_, events) = run_checked(Core::new(emu, cfg), 10_000_000);
        ooo += events.iter().filter(|e| e.out_of_order()).count() as u64;
    }
    assert!(ooo > 0, "no out-of-order commit ever observed");
}

/// Freed ROB/LQ slots are never read stale: with tiny queues every slot
/// is reused many times over; the queues' generation checks panic on any
/// stale access, so a clean completion with commits far exceeding the
/// ROB capacity demonstrates the reuse is sound.
#[test]
fn freed_slots_are_reused_without_stale_reads() {
    let mut rng = Rng::seed_from_u64(0x1217_0004);
    for _ in 0..3 {
        let emu = random_program(&mut rng);
        let cfg = tiny(
            CoreConfig::base()
                .with_scheduler(SchedulerKind::Orinoco)
                .with_commit(CommitKind::Orinoco),
        );
        let rob_entries = cfg.rob_entries as u64;
        let (_, events) = run_checked(Core::new(emu, cfg), 20_000_000);
        assert!(
            events.len() as u64 > 4 * rob_entries,
            "program too small to exercise slot reuse"
        );
    }
}
