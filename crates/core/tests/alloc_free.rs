//! Regression test for the allocation-free hot loop: after warmup, a
//! steady-state `Core::step` must perform **zero heap allocations** —
//! every per-cycle working set (selection scratch, commit windows, squash
//! lists, store-data waiters, fetch batches) lives in buffers owned by
//! the pipeline structures and is reused cycle after cycle.
//!
//! The binary installs [`orinoco_util::alloc_counter::CountingAlloc`] as
//! the global allocator and snapshots its counter around a measured run.
//! The kernel mixes ALU ops, long-latency multiplies, and data-dependent
//! (hence mispredicting) branches, so the measured window exercises the
//! issue, wakeup, unordered-commit, squash and re-inject paths — not just
//! the easy straight-line case.
//!
//! Both tracing states are covered: with the lifecycle tracer left
//! disabled (the default — the `Option<Box<Tracer>>` guard must stay off
//! the allocation path entirely) and with it enabled (the ring buffer is
//! allocated once at `enable_tracing` time; recording, including
//! overwrite once the ring is full, must not allocate again).

use orinoco_core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco_isa::{ArchReg, Emulator, ProgramBuilder};
use orinoco_util::alloc_counter::{alloc_count, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// An ALU + branch kernel with a register-resident LCG driving a
/// data-dependent branch: mispredicts (and thus squashes and re-injects)
/// keep happening in steady state, with no memory traffic that could hit
/// allocation paths in the cache model.
fn alu_branch_kernel(iters: i64) -> Emulator {
    let mut b = ProgramBuilder::new();
    let x = |i: u8| ArchReg::int(i);
    let (ctr, lcg, acc, bit, tmp) = (x(1), x(2), x(3), x(4), x(5));
    let (mula, addc) = (x(6), x(7));
    let (d1, d2, dq) = (x(8), x(9), x(10));

    b.li(ctr, iters);
    b.li(lcg, 0x2545_F491);
    b.li(acc, 0);
    b.li(mula, 6_364_136_223_846_793_005u64 as i64);
    b.li(addc, 1_442_695_040_888_963_407u64 as i64);
    b.li(d1, 0x7FFF_FFFF_FFFF);
    b.li(d2, 3);
    let top = b.label();
    let skip = b.label();
    b.bind(top);
    b.div(dq, d1, d2); //       independent long-latency op: younger ALU
    //                          work commits out of order past it.
    b.mul(lcg, lcg, mula); //   LCG step: long-latency mul on the
    b.add(lcg, lcg, addc); //   critical path keeps the window full.
    b.srli(bit, lcg, 33);
    b.andi(bit, bit, 1);
    b.add(acc, acc, lcg);
    b.xor(tmp, acc, lcg);
    b.beq(bit, ArchReg::ZERO, skip); // data-dependent: ~50% taken
    b.addi(acc, acc, 3);
    b.sub(acc, acc, tmp);
    b.bind(skip);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    b.halt();
    Emulator::new(b.build(), 1 << 16)
}

fn measure_steady_state(core: &mut Core) -> u64 {
    // Warmup: let every scratch buffer, queue and table reach its
    // steady-state capacity (including squash/re-inject paths).
    for _ in 0..50_000 {
        core.step();
    }
    assert!(!core.finished(), "kernel drained during warmup");

    const MEASURED: u64 = 20_000;
    if std::env::var_os("ORINOCO_ALLOC_TRAP").is_some() {
        orinoco_util::alloc_counter::trap_on_next_alloc(true);
    }
    let before = alloc_count();
    for _ in 0..MEASURED {
        core.step();
    }
    orinoco_util::alloc_counter::trap_on_next_alloc(false);
    let allocs = alloc_count() - before;

    assert!(!core.finished(), "kernel drained during measurement");
    let stats = core.stats();
    assert!(stats.squashed > 0, "kernel never exercised the squash path");
    assert!(stats.ooo_commits > 0, "kernel never committed out of order");
    allocs
}

/// Tracing compiled in but **disabled** (the shipping default): the
/// steady-state cycle must not allocate at all.
#[test]
fn steady_state_cycle_is_allocation_free() {
    let cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco);
    let mut core = Core::new(alu_branch_kernel(4_000_000), cfg);
    let allocs = measure_steady_state(&mut core);
    assert_eq!(
        allocs, 0,
        "steady-state Core::step allocated {allocs} times over the measured window"
    );
}

/// Tracing **enabled**: the ring buffer is the one allocation, made up
/// front by `enable_tracing`; recording events — including overwriting
/// the oldest once the ring wraps — must stay allocation-free.
#[test]
fn steady_state_cycle_is_allocation_free_with_tracing_enabled() {
    let cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco);
    let mut core = Core::new(alu_branch_kernel(4_000_000), cfg);
    // Small ring: guarantees the measured window runs in overwrite mode.
    core.enable_tracing(1 << 12);
    let allocs = measure_steady_state(&mut core);
    let tracer = core.tracer().expect("tracing enabled");
    assert!(tracer.dropped() > 0, "ring never wrapped; overwrite path untested");
    assert!(tracer.total() > 100_000, "tracer recorded implausibly few events");
    assert_eq!(
        allocs, 0,
        "traced Core::step allocated {allocs} times over the measured window"
    );
}

