//! Sampled-simulation accuracy against full detailed runs on real
//! workload kernels, plus regression coverage for the two mechanisms the
//! accuracy depends on: the functionally-reproduced mispredict sequence
//! and the wrong-path cache-pollution model.

use orinoco_core::sample::{run_sampled, SampleConfig};
use orinoco_core::{CommitKind, Core, CoreConfig, FetchUnit, SchedulerKind};
use orinoco_workloads::Workload;

fn orinoco() -> CoreConfig {
    CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco)
}

fn scfg() -> SampleConfig {
    SampleConfig::new(2_000, 10_000, 40_000)
}

#[test]
fn sampled_ipc_tracks_full_run_on_workload_kernels() {
    // Calibrated at scale 2 so each program draws enough intervals
    // (~6–18) for the ratio estimator; the measured errors are all under
    // 1.2% with the pollution model on, so 3% gives headroom without
    // masking a real regression.
    for wl in [
        Workload::ExchangeLike,
        Workload::StreamLike,
        Workload::McfLike,
        Workload::HashjoinLike,
    ] {
        let emu = wl.build(7, 2);
        let full = Core::new(emu.fork_rebased(), orinoco()).run(20_000_000_000).clone();
        let est = run_sampled(emu, orinoco(), &scfg());
        let err = (est.est_ipc() - full.ipc()).abs() / full.ipc();
        assert!(
            err < 0.03,
            "{wl:?}: sampled IPC {:.4} vs full {:.4} ({:.2}% off, {} intervals)",
            est.est_ipc(),
            full.ipc(),
            err * 100.0,
            est.intervals.len()
        );
        assert_eq!(est.total_insts, full.committed, "{wl:?}");
        assert!(est.detail_fraction() < 0.5, "{wl:?}");
    }
}

#[test]
fn functional_mispredict_sequence_matches_detailed_core() {
    // Wrong-path instructions are synthetic and never branches, so the
    // detailed predictor trains only on the committed stream — which is
    // exactly the stream FrontendWarm::warm_update sees. The functional
    // mispredict count must therefore equal the detailed core's, branch
    // for branch; the adaptive pollution model relies on this.
    for wl in [Workload::PerlLike, Workload::DeepsjengLike] {
        let cfg = orinoco();
        let mut emu = wl.build(5, 1);
        let mut warm = FetchUnit::new(emu.fork_rebased(), &cfg).warm_snapshot();
        let mut functional = 0u64;
        let mut branches = 0u64;
        while let Some(d) = emu.step() {
            if warm.warm_update(&d) {
                functional += 1;
            }
            if d.class == orinoco_isa::InstClass::Branch {
                branches += 1;
            }
        }
        let detailed = Core::new(wl.build(5, 1), cfg).run(200_000_000).clone();
        assert_eq!(functional, detailed.fetch.mispredicts, "{wl:?}");
        assert_eq!(branches, detailed.fetch.branches, "{wl:?}");
        assert!(functional > 0, "{wl:?} should mispredict");
    }
}

#[test]
fn wrong_path_pollution_model_removes_branchy_bias() {
    // Detailed wrong-path loads scatter uniformly over the data footprint
    // and keep it LLC-resident; warming without that pollution leaves the
    // sampled estimate ~15% slow on this kernel. The adaptive model must
    // keep the error inside the normal envelope.
    let emu = Workload::PerlLike.build(7, 1);
    let full = Core::new(emu.fork_rebased(), orinoco()).run(20_000_000_000).clone();
    let with_model = run_sampled(emu.fork_rebased(), orinoco(), &scfg());
    let without = run_sampled(emu, orinoco(), &scfg().with_wrong_path_depth(0));
    let err_with = (with_model.est_ipc() - full.ipc()) / full.ipc();
    let err_without = (without.est_ipc() - full.ipc()) / full.ipc();
    assert!(
        err_with.abs() < 0.03,
        "adaptive pollution model off by {:.2}%",
        err_with * 100.0
    );
    assert!(
        err_without < -0.08,
        "pollution-free warming should read slow (got {:+.2}%) — if this \
         'fixes' itself the detailed core's wrong-path model changed",
        err_without * 100.0
    );
}

#[test]
fn sampling_is_deterministic_on_workloads() {
    let scfg = scfg();
    let a = run_sampled(Workload::HashjoinLike.build(9, 1), orinoco(), &scfg);
    let b = run_sampled(Workload::HashjoinLike.build(9, 1), orinoco(), &scfg);
    assert_eq!(a.est_cycles(), b.est_cycles());
    assert_eq!(a.intervals.len(), b.intervals.len());
    for (x, y) in a.intervals.iter().zip(&b.intervals) {
        assert_eq!((x.start_inst, x.insts, x.cycles), (y.start_inst, y.insts, y.cycles));
    }
}

#[test]
fn stratified_beats_systematic_on_a_periodic_program() {
    // Plain systematic sampling phase-locks onto program periodicities;
    // the stratified default must never be *worse* than systematic by
    // more than noise on a strongly periodic kernel.
    let emu = Workload::StreamLike.build(7, 2);
    let full = Core::new(emu.fork_rebased(), orinoco()).run(20_000_000_000).clone();
    let strat = run_sampled(emu.fork_rebased(), orinoco(), &scfg());
    let syst = run_sampled(emu, orinoco(), &scfg().systematic());
    let err_strat = (strat.est_ipc() - full.ipc()).abs() / full.ipc();
    let err_syst = (syst.est_ipc() - full.ipc()).abs() / full.ipc();
    assert!(
        err_strat <= err_syst + 0.01,
        "stratified {:.2}% vs systematic {:.2}%",
        err_strat * 100.0,
        err_syst * 100.0
    );
}
