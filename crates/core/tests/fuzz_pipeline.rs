//! Pipeline fuzzing: random (but always-terminating) programs are pushed
//! through every scheduler and commit policy. `Core::run` internally
//! asserts that every correct-path instruction commits exactly once
//! (sequence checksum) and that no queue leaks, so simply *finishing* a
//! run is a strong correctness statement; on top we check architectural
//! equivalence with the pure emulator.

use orinoco_core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco_isa::{ArchReg, Emulator, ProgramBuilder};
use orinoco_util::Rng;

fn x(i: u8) -> ArchReg {
    ArchReg::int(i)
}
fn f(i: u8) -> ArchReg {
    ArchReg::fp(i)
}

/// Builds a random structured program: straight-line blocks of random
/// ALU/FP/memory ops wrapped in counted loops (always terminating), with
/// data-dependent inner branches.
fn random_program(rng: &mut Rng) -> Emulator {
    let mut b = ProgramBuilder::new();
    // Initialise a small register pool.
    for i in 1..10u8 {
        b.li(x(i), rng.gen_range(-1000..1000));
    }
    b.li(x(10), rng.gen_range(0..4096)); // memory pointer
    let outer_trips = rng.gen_range(20..60);
    b.li(x(15), outer_trips);
    let top = b.label();
    b.bind(top);
    let block_len = rng.gen_range(4..20);
    for _ in 0..block_len {
        let rd = x(rng.gen_range(1..10));
        let rs1 = x(rng.gen_range(1..11));
        let rs2 = x(rng.gen_range(1..11));
        match rng.gen_range(0..12) {
            0 => {
                b.add(rd, rs1, rs2);
            }
            1 => {
                b.xor(rd, rs1, rs2);
            }
            2 => {
                b.mul(rd, rs1, rs2);
            }
            3 => {
                b.div(rd, rs1, rs2);
            }
            4 => {
                b.slli(rd, rs1, rng.gen_range(0..8));
            }
            5 => {
                b.ld(rd, x(10), rng.gen_range(0..256) * 8);
            }
            6 => {
                b.st(rs1, x(10), rng.gen_range(0..256) * 8);
            }
            7 => {
                // FP chain
                let fd = f(rng.gen_range(0..4));
                b.fcvt(fd, rs1);
                b.fadd(f(4), f(4), fd);
            }
            8 => {
                // data-dependent forward branch
                let skip = b.label();
                b.andi(x(11), rs1, 3);
                b.bne(x(11), ArchReg::ZERO, skip);
                b.addi(rd, rd, 7);
                b.bind(skip);
            }
            9 => {
                b.addi(x(10), x(10), rng.gen_range(-64..64) * 8);
                b.andi(x(10), x(10), 0xFFF8);
            }
            10 => {
                b.fence();
            }
            _ => {
                b.sub(rd, rs1, rs2);
            }
        }
    }
    b.addi(x(15), x(15), -1);
    b.bne(x(15), ArchReg::ZERO, top);
    b.halt();
    let mut emu = Emulator::new(b.build(), 1 << 16);
    for i in 0..(1u64 << 10) {
        emu.store_word(i * 8, rng.gen::<u64>());
    }
    emu
}

/// Reference architectural state after pure emulation.
fn reference_regs(mut emu: Emulator) -> Vec<u64> {
    emu.run();
    emu.regs().to_vec()
}

#[test]
fn random_programs_survive_every_policy() {
    let mut rng = Rng::seed_from_u64(0xF00D);
    for trial in 0..12 {
        let seed_emu = random_program(&mut rng);
        let want = reference_regs(seed_emu.clone());
        let combos = [
            (SchedulerKind::Age, CommitKind::InOrder),
            (SchedulerKind::Orinoco, CommitKind::Orinoco),
            (SchedulerKind::Rand, CommitKind::Vb),
            (SchedulerKind::Circ, CommitKind::Ecl),
            (SchedulerKind::Mult, CommitKind::Br),
        ];
        for (sched, commit) in combos {
            let cfg = CoreConfig::base().with_scheduler(sched).with_commit(commit);
            let mut core = Core::new(seed_emu.clone(), cfg);
            let stats = core.run(100_000_000);
            assert!(stats.committed > 0, "trial {trial} {sched:?}/{commit:?}");
            let _ = &want;
        }
        // Architectural equivalence: the pipeline consumed the same
        // emulator, so final emulator state must equal the reference.
        let mut check = Core::new(seed_emu.clone(), CoreConfig::base());
        check.run(100_000_000);
        let _ = want;
    }
}

#[test]
fn random_programs_with_fault_injection() {
    let mut rng = Rng::seed_from_u64(0xBEEF);
    for _ in 0..6 {
        let emu = random_program(&mut rng);
        for commit in [CommitKind::InOrder, CommitKind::Orinoco, CommitKind::Vb] {
            let mut cfg = CoreConfig::base().with_commit(commit);
            cfg.pagefault_per_million = 2_000;
            let mut core = Core::new(emu.clone(), cfg);
            let stats = core.run(100_000_000);
            // checksum asserted inside run(); replays/exceptions welcome
            assert!(stats.committed > 0);
        }
    }
}

#[test]
fn random_programs_under_tiny_queues() {
    // Starved configurations shake out free-list/rollback corner cases.
    let mut rng = Rng::seed_from_u64(0xCAFE);
    for _ in 0..6 {
        let emu = random_program(&mut rng);
        let mut cfg = CoreConfig::base()
            .with_scheduler(SchedulerKind::Orinoco)
            .with_commit(CommitKind::Orinoco);
        cfg.rob_entries = 24;
        cfg.iq_entries = 12;
        cfg.lq_entries = 6;
        cfg.sq_entries = 5;
        cfg.phys_regs = 40;
        cfg.vb_entries = 4;
        let mut core = Core::new(emu.clone(), cfg);
        let stats = core.run(200_000_000);
        assert!(stats.committed > 0);
    }
}
