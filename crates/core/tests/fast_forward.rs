//! Idle-cycle fast-forward (DESIGN.md §10) correctness tests.
//!
//! Two angles:
//!
//! 1. **Property test of the next-event computation**: on random programs
//!    and memory-bound workloads, drive a fast-forward-*disabled* core one
//!    cycle at a time as the naive reference. Whenever the core reports a
//!    frozen state with next event `ne` (via `debug_frozen_next_event`),
//!    every naive step strictly before `ne` must keep the machine frozen
//!    with the *same* next event and commit nothing — i.e. the cycles the
//!    fast-forward would skip are provably dead.
//! 2. **Observational equivalence on real workloads**: full runs with
//!    fast-forward on and off must produce byte-identical lifecycle-trace
//!    JSONL and identical `SimStats` (the verif `ffeq` campaign covers the
//!    same property over fuzz programs and rotated configurations).

use orinoco_core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco_isa::{ArchReg, Emulator, ProgramBuilder};
use orinoco_util::Rng;
use orinoco_workloads::Workload;

fn x(i: u8) -> ArchReg {
    ArchReg::int(i)
}

fn orinoco_cfg() -> CoreConfig {
    CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco)
}

/// A small random program with loads scattered over a region large enough
/// to miss in the caches, so frozen (memory-latency-bound) windows occur.
fn random_missy_program(rng: &mut Rng) -> Emulator {
    let mut b = ProgramBuilder::new();
    for i in 1..8u8 {
        b.li(x(i), rng.gen_range(-100..100));
    }
    b.li(x(10), 0);
    let trips = rng.gen_range(30..80);
    b.li(x(15), trips);
    let top = b.label();
    b.bind(top);
    for _ in 0..rng.gen_range(2..6) {
        let rd = x(rng.gen_range(1..8));
        match rng.gen_range(0..4) {
            0 => {
                // Dependent far load: next address derives from the data.
                b.ld(rd, x(10), rng.gen_range(0..64) * 8);
                b.xor(x(10), x(10), rd);
                b.slli(x(10), x(10), 3);
                b.andi(x(10), x(10), 0x3F_FFF8);
            }
            1 => {
                b.add(rd, rd, x(rng.gen_range(1..8)));
            }
            2 => {
                b.mul(rd, rd, x(rng.gen_range(1..8)));
            }
            _ => {
                b.st(rd, x(10), rng.gen_range(0..64) * 8);
            }
        }
    }
    b.addi(x(15), x(15), -1);
    b.bne(x(15), ArchReg::ZERO, top);
    b.halt();
    let mut emu = Emulator::new(b.build(), 8 << 20);
    for i in 0..(1u64 << 14) {
        emu.store_word(i * 8, rng.gen::<u64>() & 0x3F_FFF8);
    }
    emu
}

/// Naive reference check: steps `core` (fast-forward disabled) to
/// completion; inside every frozen window the machine must stay frozen
/// with an unchanged next event and zero commits until the event cycle.
/// Returns the number of frozen windows observed.
fn check_frozen_windows(mut core: Core, max_cycles: u64) -> u64 {
    let mut windows = 0u64;
    while !core.finished() && core.cycle() < max_cycles {
        core.step();
        let Some(ne) = core.debug_frozen_next_event() else {
            continue;
        };
        assert!(ne >= core.cycle(), "next event {ne} in the past at cycle {}", core.cycle());
        assert!(
            ne - core.cycle() < 1_000_000,
            "next event {ne} unreasonably far from cycle {} (deadlock?)",
            core.cycle()
        );
        if ne > core.cycle() {
            windows += 1;
        }
        // The skipped range [cycle, ne) must be provably dead: frozen,
        // same next event, nothing committed.
        while core.cycle() < ne {
            let committed = core.stats().committed;
            core.step();
            assert_eq!(
                core.stats().committed,
                committed,
                "commit inside a window fast-forward would skip (cycle {})",
                core.cycle()
            );
            if core.cycle() < ne {
                assert_eq!(
                    core.debug_frozen_next_event(),
                    Some(ne),
                    "frozen state not stable at cycle {} (window ends {ne})",
                    core.cycle()
                );
            }
        }
    }
    assert!(core.finished(), "reference run did not finish in {max_cycles} cycles");
    windows
}

#[test]
fn next_event_matches_naive_reference_on_random_programs() {
    let mut rng = Rng::seed_from_u64(0xFF_1D1E);
    let mut total_windows = 0u64;
    for _ in 0..8 {
        let emu = random_missy_program(&mut rng);
        let core = Core::new(emu, orinoco_cfg().without_fast_forward());
        total_windows += check_frozen_windows(core, 10_000_000);
    }
    assert!(total_windows > 0, "no frozen window ever engaged; property vacuous");
}

#[test]
fn next_event_matches_naive_reference_on_memlat() {
    let mut emu = Workload::MemlatLike.build(13, 1);
    emu.set_step_limit(3_000);
    let core = Core::new(emu, orinoco_cfg().without_fast_forward());
    let windows = check_frozen_windows(core, 10_000_000);
    assert!(windows > 10, "memlat_like produced only {windows} frozen windows");
}

/// Full run with tracing; returns the trace JSONL and the stats Debug
/// rendering.
fn traced_run(workload: Workload, cfg: CoreConfig) -> (String, String) {
    let mut emu = workload.build(21, 1);
    emu.set_step_limit(8_000);
    let mut core = Core::new(emu, cfg);
    core.enable_tracing(1 << 16);
    let stats = format!("{:?}", core.run(100_000_000));
    let trace = core.take_tracer().map(|t| t.to_jsonl()).unwrap_or_default();
    (trace, stats)
}

#[test]
fn traces_and_stats_are_byte_identical_with_and_without_fast_forward() {
    for w in [Workload::MemlatLike, Workload::McfLike, Workload::MixLike] {
        let (trace_ff, stats_ff) = traced_run(w, orinoco_cfg());
        let (trace_off, stats_off) = traced_run(w, orinoco_cfg().without_fast_forward());
        assert!(!trace_ff.is_empty(), "{w}: empty trace");
        assert_eq!(stats_ff, stats_off, "{w}: SimStats diverge under fast-forward");
        assert_eq!(trace_ff, trace_off, "{w}: lifecycle trace diverges under fast-forward");
    }
}

#[test]
fn fast_forward_is_on_by_default_and_skips_on_memlat() {
    assert!(CoreConfig::base().fast_forward, "fast-forward should default on");
    assert!(!CoreConfig::base().without_fast_forward().fast_forward);
    // With fast-forward on, run() must reach the same cycle count the
    // naive reference reaches, on a workload dominated by frozen windows.
    let mut emu = Workload::MemlatLike.build(13, 1);
    emu.set_step_limit(3_000);
    let mut ff_core = Core::new(emu.clone(), orinoco_cfg());
    let ff_cycles = ff_core.run(100_000_000).cycles;
    let mut naive = Core::new(emu, orinoco_cfg().without_fast_forward());
    let naive_cycles = naive.run(100_000_000).cycles;
    assert_eq!(ff_cycles, naive_cycles);
}
