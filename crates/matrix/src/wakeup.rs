//! The wakeup matrix (§3.4, Figure 8): a CAM-free IQ wakeup scheme.
//!
//! Register renaming already discovers producer→consumer dependences in the
//! front-end, so they can be recorded as *positions* instead of tags: at
//! dispatch an instruction sets, in its row, the bits of the IQ entries
//! that produce its source operands; at issue a producer clears its column.
//! An instruction whose row reduction-NORs to zero has all operands
//! available and is woken up — no associative tag broadcast required.

use crate::{BitMatrix, BitVec64};

/// Wakeup matrix over an `n`-entry instruction queue.
///
/// # Examples
///
/// ```
/// use orinoco_matrix::{BitVec64, WakeupMatrix};
///
/// let mut wm = WakeupMatrix::new(8);
/// wm.dispatch(0, &BitVec64::new(8));               // producer, no deps
/// wm.dispatch(1, &BitVec64::from_indices(8, [0])); // consumer of slot 0
/// assert!(wm.is_ready(0));
/// assert!(!wm.is_ready(1));
/// let woken = wm.issue(0);
/// assert_eq!(woken, vec![1]); // issuing 0 wakes 1 up
/// assert!(wm.is_ready(1));
/// ```
#[derive(Clone, Debug)]
pub struct WakeupMatrix {
    m: BitMatrix,
    /// Entries currently waiting in the IQ (dispatched, not yet issued).
    waiting: BitVec64,
}

impl WakeupMatrix {
    /// Creates a wakeup matrix for an `n`-entry IQ.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            m: BitMatrix::new(n, n),
            waiting: BitVec64::new(n),
        }
    }

    /// IQ capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.m.rows()
    }

    /// Entries currently resident (dispatched, not yet issued/squashed).
    #[must_use]
    pub fn waiting(&self) -> &BitVec64 {
        &self.waiting
    }

    /// Dispatches an instruction into `slot` with the given in-IQ
    /// producers. Producers that already issued (or never entered the IQ —
    /// operands read from the register file) are simply not in the vector.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is live, the vector length mismatches, or the
    /// instruction lists itself as a producer.
    pub fn dispatch(&mut self, slot: usize, producers: &BitVec64) {
        assert!(!self.waiting.get(slot), "dispatch into live slot {slot}");
        assert!(!producers.get(slot), "instruction cannot produce its own source");
        self.m.write_row(slot, producers);
        self.m.clear_col(slot);
        self.waiting.set(slot);
    }

    /// Issues the instruction in `slot`: clears its column (waking its
    /// consumers) and removes it from the waiting set. Returns the slots
    /// that became ready *because of this issue*.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not waiting.
    pub fn issue(&mut self, slot: usize) -> Vec<usize> {
        assert!(self.waiting.get(slot), "issue of empty slot {slot}");
        let dependents = self.m.read_col(slot);
        self.m.clear_col(slot);
        self.waiting.clear(slot);
        dependents
            .and(&self.waiting)
            .iter_ones()
            .filter(|&s| self.m.row_is_zero(s))
            .collect()
    }

    /// Removes a squashed instruction without waking dependents (they are
    /// being squashed too).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not waiting.
    pub fn squash(&mut self, slot: usize) {
        assert!(self.waiting.get(slot), "squash of empty slot {slot}");
        self.waiting.clear(slot);
        self.m.clear_row(slot);
    }

    /// `true` if the instruction has all operands available (row
    /// reduction-NORs to zero).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn is_ready(&self, slot: usize) -> bool {
        self.waiting.get(slot) && self.m.row_is_zero(slot)
    }

    /// All currently ready waiting entries — the `BID` vector fed to the
    /// age matrix for select.
    #[must_use]
    pub fn ready_set(&self) -> BitVec64 {
        let mut out = BitVec64::new(self.capacity());
        for slot in self.waiting.iter_ones() {
            if self.m.row_is_zero(slot) {
                out.set(slot);
            }
        }
        out
    }

    /// Outstanding producer count for `slot` (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn pending_producers(&self, slot: usize) -> u32 {
        self.m.row_count(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependency_chain_wakes_in_order() {
        let mut wm = WakeupMatrix::new(4);
        wm.dispatch(0, &BitVec64::new(4));
        wm.dispatch(1, &BitVec64::from_indices(4, [0]));
        wm.dispatch(2, &BitVec64::from_indices(4, [1]));
        assert_eq!(wm.ready_set().iter_ones().collect::<Vec<_>>(), vec![0]);
        assert_eq!(wm.issue(0), vec![1]);
        assert_eq!(wm.issue(1), vec![2]);
        assert_eq!(wm.issue(2), Vec::<usize>::new());
        assert!(wm.waiting().is_zero());
    }

    #[test]
    fn two_operand_instruction_waits_for_both() {
        let mut wm = WakeupMatrix::new(4);
        wm.dispatch(0, &BitVec64::new(4));
        wm.dispatch(1, &BitVec64::new(4));
        wm.dispatch(2, &BitVec64::from_indices(4, [0, 1]));
        assert_eq!(wm.pending_producers(2), 2);
        assert_eq!(wm.issue(0), Vec::<usize>::new()); // still waiting on 1
        assert_eq!(wm.issue(1), vec![2]);
    }

    #[test]
    fn one_producer_wakes_multiple_consumers() {
        let mut wm = WakeupMatrix::new(4);
        wm.dispatch(3, &BitVec64::new(4));
        wm.dispatch(0, &BitVec64::from_indices(4, [3]));
        wm.dispatch(1, &BitVec64::from_indices(4, [3]));
        let mut woken = wm.issue(3);
        woken.sort_unstable();
        assert_eq!(woken, vec![0, 1]);
    }

    #[test]
    fn slot_reuse_is_clean() {
        let mut wm = WakeupMatrix::new(4);
        wm.dispatch(0, &BitVec64::new(4));
        wm.dispatch(1, &BitVec64::from_indices(4, [0]));
        wm.issue(0);
        // slot 0 recycled by an instruction depending on slot 1
        wm.dispatch(0, &BitVec64::from_indices(4, [1]));
        assert!(!wm.is_ready(0));
        assert_eq!(wm.issue(1), vec![0]);
    }

    #[test]
    fn squash_does_not_wake_dependents() {
        let mut wm = WakeupMatrix::new(4);
        wm.dispatch(0, &BitVec64::new(4));
        wm.dispatch(1, &BitVec64::from_indices(4, [0]));
        wm.squash(1);
        assert!(!wm.is_ready(1));
        assert_eq!(wm.issue(0), Vec::<usize>::new());
    }

    #[test]
    fn ready_set_equals_per_slot_checks() {
        let mut wm = WakeupMatrix::new(8);
        wm.dispatch(2, &BitVec64::new(8));
        wm.dispatch(5, &BitVec64::from_indices(8, [2]));
        wm.dispatch(7, &BitVec64::new(8));
        let ready = wm.ready_set();
        for s in 0..8 {
            assert_eq!(ready.get(s), wm.is_ready(s), "slot {s}");
        }
    }

    #[test]
    #[should_panic(expected = "produce its own source")]
    fn self_dependency_panics() {
        let mut wm = WakeupMatrix::new(4);
        wm.dispatch(1, &BitVec64::from_indices(4, [1]));
    }

    #[test]
    #[should_panic(expected = "issue of empty slot")]
    fn issue_empty_panics() {
        WakeupMatrix::new(4).issue(0);
    }
}
