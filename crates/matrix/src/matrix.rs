//! A dense bit matrix with row-major storage and efficient column writes.
//!
//! [`BitMatrix`] is the raw fabric underneath every matrix scheduler in this
//! crate. In the paper the same fabric is an 8T SRAM array: a row write is a
//! (multi-bank) word-line write, a column clear is the dual-supply-voltage
//! column-wise write of §4.2, and the row AND/NOR/bit-count reads are the
//! bit-line computing operations of §4.1.

use crate::bitvec::IterOnes;
use crate::BitVec64;
use std::fmt;

/// A dense `rows × cols` bit matrix.
///
/// Rows are stored contiguously as `u64` words so that the per-row
/// operations used by the schedulers (`row & vector`, popcount, reduction
/// NOR) run a word at a time.
///
/// # Examples
///
/// ```
/// use orinoco_matrix::{BitMatrix, BitVec64};
///
/// let mut m = BitMatrix::new(4, 4);
/// m.set(1, 0); // instruction 1's row says: entry 0 is older
/// let bid = BitVec64::from_indices(4, [0]);
/// assert_eq!(m.row_and_count(1, &bid), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    words: Vec<u64>,
    rows: usize,
    cols: usize,
    words_per_row: usize,
}

impl BitMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            words: vec![0; rows * words_per_row],
            rows,
            cols,
            words_per_row,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        debug_assert!(r < self.rows);
        let start = r * self.words_per_row;
        start..start + self.words_per_row
    }

    /// Sets the bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(row < self.rows && col < self.cols, "({row},{col}) out of bounds");
        self.words[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Clears the bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn clear(&mut self, row: usize, col: usize) {
        assert!(row < self.rows && col < self.cols, "({row},{col}) out of bounds");
        self.words[row * self.words_per_row + col / 64] &= !(1u64 << (col % 64));
    }

    /// Reads the bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "({row},{col}) out of bounds");
        (self.words[row * self.words_per_row + col / 64] >> (col % 64)) & 1 == 1
    }

    /// Overwrites `row` with the contents of `bits`.
    ///
    /// This is the dispatch-time row write of the schedulers.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `bits.len() != cols`.
    pub fn write_row(&mut self, row: usize, bits: &BitVec64) {
        assert_eq!(bits.len(), self.cols, "row width mismatch");
        let range = self.row_range(row);
        self.words[range].copy_from_slice(bits.words());
    }

    /// Sets every bit of `row` to one.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn set_row_all(&mut self, row: usize) {
        let range = self.row_range(row);
        for w in &mut self.words[range] {
            *w = u64::MAX;
        }
        let tail = self.cols % 64;
        if tail != 0 {
            let last = (row + 1) * self.words_per_row - 1;
            self.words[last] &= (1u64 << tail) - 1;
        }
    }

    /// Clears every bit of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn clear_row(&mut self, row: usize) {
        let range = self.row_range(row);
        for w in &mut self.words[range] {
            *w = 0;
        }
    }

    /// `row |= bits`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `bits.len() != cols`.
    pub fn row_or_assign(&mut self, row: usize, bits: &BitVec64) {
        assert_eq!(bits.len(), self.cols, "row width mismatch");
        let range = self.row_range(row);
        for (w, b) in self.words[range].iter_mut().zip(bits.words()) {
            *w |= b;
        }
    }

    /// Clears column `col` in every row (the column-wise clear of §4.2).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn clear_col(&mut self, col: usize) {
        assert!(col < self.cols, "column {col} out of bounds");
        let word = col / 64;
        let mask = !(1u64 << (col % 64));
        for r in 0..self.rows {
            self.words[r * self.words_per_row + word] &= mask;
        }
    }

    /// Clears column `col` only in the rows selected by `row_mask`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds or `row_mask.len() != rows`.
    pub fn clear_col_masked(&mut self, col: usize, row_mask: &BitVec64) {
        assert!(col < self.cols, "column {col} out of bounds");
        assert_eq!(row_mask.len(), self.rows, "row mask length mismatch");
        let word = col / 64;
        let mask = !(1u64 << (col % 64));
        let wpr = self.words_per_row;
        for (wi, &mw) in row_mask.words().iter().enumerate() {
            let mut m = mw;
            let base = wi * 64 * wpr + word;
            while m != 0 {
                let r = m.trailing_zeros() as usize;
                m &= m - 1;
                self.words[base + r * wpr] &= mask;
            }
        }
    }

    /// Sets column `col` only in the rows selected by `row_mask`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds or `row_mask.len() != rows`.
    pub fn set_col_masked(&mut self, col: usize, row_mask: &BitVec64) {
        assert!(col < self.cols, "column {col} out of bounds");
        assert_eq!(row_mask.len(), self.rows, "row mask length mismatch");
        let word = col / 64;
        let bit = 1u64 << (col % 64);
        let wpr = self.words_per_row;
        for (wi, &mw) in row_mask.words().iter().enumerate() {
            let mut m = mw;
            let base = wi * 64 * wpr + word;
            while m != 0 {
                let r = m.trailing_zeros() as usize;
                m &= m - 1;
                self.words[base + r * wpr] |= bit;
            }
        }
    }

    /// Reads column `col` as a [`BitVec64`] of length `rows` (the
    /// column-wise read of §4.2, used for memory disambiguation and
    /// instruction squash).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    #[must_use]
    pub fn read_col(&self, col: usize) -> BitVec64 {
        let mut out = BitVec64::new(self.rows);
        self.read_col_into(col, &mut out);
        out
    }

    /// Reads column `col` into a caller-owned [`BitVec64`] of length `rows`
    /// (the allocation-free counterpart of [`BitMatrix::read_col`]).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds or `out.len() != rows`.
    pub fn read_col_into(&self, col: usize, out: &mut BitVec64) {
        assert!(col < self.cols, "column {col} out of bounds");
        assert_eq!(out.len(), self.rows, "column buffer length mismatch");
        let word = col / 64;
        let shift = col % 64;
        let out_words = out.words_mut();
        for w in out_words.iter_mut() {
            *w = 0;
        }
        for r in 0..self.rows {
            let bit = (self.words[r * self.words_per_row + word] >> shift) & 1;
            out_words[r / 64] |= bit << (r % 64);
        }
    }

    /// Copies row `row` into a fresh [`BitVec64`].
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn read_row(&self, row: usize) -> BitVec64 {
        let mut out = BitVec64::new(self.cols);
        self.read_row_into(row, &mut out);
        out
    }

    /// Copies row `row` word-at-a-time into a caller-owned [`BitVec64`]
    /// (the allocation-free counterpart of [`BitMatrix::read_row`],
    /// mirroring [`BitMatrix::write_row`]).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `out.len() != cols`.
    pub fn read_row_into(&self, row: usize, out: &mut BitVec64) {
        assert_eq!(out.len(), self.cols, "row buffer length mismatch");
        let range = self.row_range(row);
        out.words_mut().copy_from_slice(&self.words[range]);
    }

    /// Iterates over the column indices of the set bits of `row`, without
    /// copying the row out first — the word-at-a-time row scan used by the
    /// grant and wakeup hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn iter_row_ones(&self, row: usize) -> IterOnes<'_> {
        let range = self.row_range(row);
        IterOnes::from_words(&self.words[range])
    }

    /// Popcount of `row & mask` — the bit count encoding read (§3.1/§4.1).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `mask.len() != cols`.
    #[inline]
    #[must_use]
    pub fn row_and_count(&self, row: usize, mask: &BitVec64) -> u32 {
        assert_eq!(mask.len(), self.cols, "mask width mismatch");
        let range = self.row_range(row);
        self.words[range]
            .iter()
            .zip(mask.words())
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// `true` if `row & mask` has no set bit (AND + reduction NOR).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `mask.len() != cols`.
    #[inline]
    #[must_use]
    pub fn row_and_is_zero(&self, row: usize, mask: &BitVec64) -> bool {
        assert_eq!(mask.len(), self.cols, "mask width mismatch");
        let range = self.row_range(row);
        self.words[range]
            .iter()
            .zip(mask.words())
            .all(|(a, b)| a & b == 0)
    }

    /// Popcount of `row & a & b` without materialising `a & b`.
    ///
    /// Lets the schedulers rank against `request & valid` (or any other
    /// vector pair) without allocating the intermediate AND.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or either mask has a length other
    /// than `cols`.
    #[inline]
    #[must_use]
    pub fn row_and2_count(&self, row: usize, a: &BitVec64, b: &BitVec64) -> u32 {
        assert_eq!(a.len(), self.cols, "mask width mismatch");
        assert_eq!(b.len(), self.cols, "mask width mismatch");
        let range = self.row_range(row);
        self.words[range]
            .iter()
            .zip(a.words().iter().zip(b.words()))
            .map(|(w, (x, y))| (w & x & y).count_ones())
            .sum()
    }

    /// Popcount of `row & mask`, reported only when it is **below**
    /// `limit`: the early-exiting form of [`BitMatrix::row_and_count`] used
    /// by the word-parallel select paths, where most entries exceed the
    /// issue width within the first word or two and the rest of the row
    /// need not be read.
    ///
    /// Returns `Some(rank)` iff `row_and_count(row, mask) < limit`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `mask.len() != cols`.
    #[inline]
    #[must_use]
    pub fn row_and_rank_below(&self, row: usize, mask: &BitVec64, limit: u32) -> Option<u32> {
        assert_eq!(mask.len(), self.cols, "mask width mismatch");
        let range = self.row_range(row);
        let mut rank = 0u32;
        for (w, m) in self.words[range].iter().zip(mask.words()) {
            rank += (w & m).count_ones();
            if rank >= limit {
                return None;
            }
        }
        // `rank >= limit` always bails inside the loop, so a zero-word row
        // (cols == 0) must still honour limit == 0 here.
        (rank < limit).then_some(rank)
    }

    /// Popcount of `row & a & b`, reported only when below `limit` — the
    /// three-way form of [`BitMatrix::row_and_rank_below`], ranking against
    /// `request & valid` without materialising the AND.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or either mask has a length other
    /// than `cols`.
    #[inline]
    #[must_use]
    pub fn row_and2_rank_below(
        &self,
        row: usize,
        a: &BitVec64,
        b: &BitVec64,
        limit: u32,
    ) -> Option<u32> {
        assert_eq!(a.len(), self.cols, "mask width mismatch");
        assert_eq!(b.len(), self.cols, "mask width mismatch");
        let range = self.row_range(row);
        let mut rank = 0u32;
        for (w, (x, y)) in self.words[range].iter().zip(a.words().iter().zip(b.words())) {
            rank += (w & x & y).count_ones();
            if rank >= limit {
                return None;
            }
        }
        (rank < limit).then_some(rank)
    }

    /// Column index of the lowest set bit of `row & a & b`, or `None` if
    /// the intersection is empty — one `trailing_zeros` per 64 columns.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or either mask has a length other
    /// than `cols`.
    #[inline]
    #[must_use]
    pub fn row_first_one_and2(&self, row: usize, a: &BitVec64, b: &BitVec64) -> Option<usize> {
        assert_eq!(a.len(), self.cols, "mask width mismatch");
        assert_eq!(b.len(), self.cols, "mask width mismatch");
        let range = self.row_range(row);
        for (wi, (w, (x, y))) in
            self.words[range].iter().zip(a.words().iter().zip(b.words())).enumerate()
        {
            let v = w & x & y;
            if v != 0 {
                return Some(wi * 64 + v.trailing_zeros() as usize);
            }
        }
        None
    }

    /// `true` if `row & a & b` has no set bit, without materialising
    /// `a & b`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or either mask has a length other
    /// than `cols`.
    #[inline]
    #[must_use]
    pub fn row_and2_is_zero(&self, row: usize, a: &BitVec64, b: &BitVec64) -> bool {
        assert_eq!(a.len(), self.cols, "mask width mismatch");
        assert_eq!(b.len(), self.cols, "mask width mismatch");
        let range = self.row_range(row);
        self.words[range]
            .iter()
            .zip(a.words().iter().zip(b.words()))
            .all(|(w, (x, y))| w & x & y == 0)
    }

    /// `true` if every bit of `row` is zero.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    #[must_use]
    pub fn row_is_zero(&self, row: usize) -> bool {
        let range = self.row_range(row);
        self.words[range].iter().all(|&w| w == 0)
    }

    /// Number of set bits in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    #[must_use]
    pub fn row_count(&self, row: usize) -> u32 {
        let range = self.row_range(row);
        self.words[range].iter().map(|w| w.count_ones()).sum()
    }

    /// Clears the whole matrix.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let m = BitMatrix::new(5, 70);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 70);
        for r in 0..5 {
            assert!(m.row_is_zero(r));
        }
    }

    #[test]
    fn set_get_clear() {
        let mut m = BitMatrix::new(3, 130);
        m.set(2, 129);
        assert!(m.get(2, 129));
        assert!(!m.get(1, 129));
        m.clear(2, 129);
        assert!(!m.get(2, 129));
    }

    #[test]
    fn set_row_all_masks_tail() {
        let mut m = BitMatrix::new(2, 70);
        m.set_row_all(0);
        assert_eq!(m.row_count(0), 70);
        assert_eq!(m.row_count(1), 0);
        // read back
        let row = m.read_row(0);
        assert_eq!(row.count_ones(), 70);
    }

    #[test]
    fn write_and_read_row() {
        let mut m = BitMatrix::new(4, 100);
        let bits = BitVec64::from_indices(100, [0, 64, 99]);
        m.write_row(2, &bits);
        assert_eq!(m.read_row(2), bits);
        assert!(m.get(2, 64));
    }

    #[test]
    fn row_or_assign_merges() {
        let mut m = BitMatrix::new(2, 10);
        m.set(0, 1);
        m.row_or_assign(0, &BitVec64::from_indices(10, [3]));
        assert_eq!(m.read_row(0).iter_ones().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn clear_col_clears_every_row() {
        let mut m = BitMatrix::new(4, 4);
        for r in 0..4 {
            m.set_row_all(r);
        }
        m.clear_col(2);
        for r in 0..4 {
            assert!(!m.get(r, 2));
            assert_eq!(m.row_count(r), 3);
        }
    }

    #[test]
    fn clear_col_masked_respects_mask() {
        let mut m = BitMatrix::new(4, 4);
        for r in 0..4 {
            m.set_row_all(r);
        }
        m.clear_col_masked(1, &BitVec64::from_indices(4, [0, 3]));
        assert!(!m.get(0, 1));
        assert!(m.get(1, 1));
        assert!(m.get(2, 1));
        assert!(!m.get(3, 1));
    }

    #[test]
    fn set_col_masked_sets_only_masked_rows() {
        let mut m = BitMatrix::new(4, 4);
        m.set_col_masked(3, &BitVec64::from_indices(4, [1]));
        assert!(m.get(1, 3));
        assert!(!m.get(0, 3));
    }

    #[test]
    fn read_col_roundtrip() {
        let mut m = BitMatrix::new(6, 3);
        m.set(1, 2);
        m.set(4, 2);
        let col = m.read_col(2);
        assert_eq!(col.iter_ones().collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn row_and_count_and_is_zero() {
        let mut m = BitMatrix::new(2, 128);
        m.set(0, 5);
        m.set(0, 100);
        let mask = BitVec64::from_indices(128, [5, 100, 101]);
        assert_eq!(m.row_and_count(0, &mask), 2);
        assert!(!m.row_and_is_zero(0, &mask));
        assert!(m.row_and_is_zero(1, &mask));
        let empty = BitVec64::new(128);
        assert!(m.row_and_is_zero(0, &empty));
    }

    #[test]
    fn rank_below_early_exits_consistently() {
        let mut m = BitMatrix::new(2, 128);
        for c in [0, 1, 2, 63, 64, 100] {
            m.set(0, c);
        }
        let mask = BitVec64::ones(128);
        assert_eq!(m.row_and_rank_below(0, &mask, 7), Some(6));
        assert_eq!(m.row_and_rank_below(0, &mask, 6), None);
        assert_eq!(m.row_and_rank_below(0, &mask, 0), None);
        assert_eq!(m.row_and_rank_below(1, &mask, 1), Some(0));
        assert_eq!(m.row_and_rank_below(1, &mask, 0), None);
        let narrow = BitVec64::from_indices(128, [63, 64]);
        assert_eq!(m.row_and2_rank_below(0, &mask, &narrow, 4), Some(2));
        assert_eq!(m.row_and2_rank_below(0, &mask, &narrow, 2), None);
    }

    #[test]
    fn row_first_one_and2_scans_words() {
        let mut m = BitMatrix::new(1, 130);
        m.set(0, 65);
        m.set(0, 129);
        let all = BitVec64::ones(130);
        assert_eq!(m.row_first_one_and2(0, &all, &all), Some(65));
        let hi = BitVec64::from_indices(130, [129]);
        assert_eq!(m.row_first_one_and2(0, &all, &hi), Some(129));
        let none = BitVec64::new(130);
        assert_eq!(m.row_first_one_and2(0, &all, &none), None);
    }

    #[test]
    fn non_square_shapes() {
        // LQ x SQ style rectangle (72 x 56 in the paper)
        let mut m = BitMatrix::new(72, 56);
        m.set(71, 55);
        assert!(m.get(71, 55));
        m.clear_col(55);
        assert!(!m.get(71, 55));
    }

    #[test]
    fn clear_all_resets() {
        let mut m = BitMatrix::new(3, 3);
        m.set_row_all(1);
        m.clear_all();
        assert!(m.row_is_zero(1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        BitMatrix::new(2, 2).set(2, 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = BitMatrix::new(2, 2);
        assert!(format!("{m:?}").contains("BitMatrix 2x2"));
    }
}
