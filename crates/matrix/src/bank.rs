//! Multibanking of the matrix schedulers (§4.3).
//!
//! True multi-ported SRAM is too expensive, so the schedulers' arrays are
//! split horizontally into `n` single-ported banks, where `n` is the
//! dispatch width. Each dispatched instruction must be steered to a
//! *different* bank (one row write per bank per cycle); the read vectors are
//! broadcast to all banks and the bit lines stay integrated, so reads are
//! unaffected. Functionally the only observable consequence is the
//! dispatch-steering constraint modelled by [`BankAllocator`].

use crate::BitVec64;

/// Steers dispatching instructions to free entries of a banked matrix
/// scheduler, at most one per bank per cycle, in a load-balancing manner.
///
/// # Examples
///
/// ```
/// use orinoco_matrix::{BankAllocator, BitVec64};
///
/// let alloc = BankAllocator::new(8, 4); // 8 entries, 4 banks of 2
/// let free = BitVec64::from_indices(8, [0, 1, 2, 7]);
/// // Entries 0 and 1 share bank 0, so a 3-wide dispatch picks one entry
/// // from each of banks 0, 1 and 3.
/// let slots = alloc.steer(&free, 3);
/// assert_eq!(slots.len(), 3);
/// let banks: Vec<_> = slots.iter().map(|&s| alloc.bank_of(s)).collect();
/// assert!(banks.windows(2).all(|w| w[0] != w[1]));
/// ```
#[derive(Clone, Debug)]
pub struct BankAllocator {
    capacity: usize,
    banks: usize,
    rows_per_bank: usize,
}

impl BankAllocator {
    /// Creates an allocator for `capacity` entries split into `banks`
    /// horizontal banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or exceeds `capacity`.
    #[must_use]
    pub fn new(capacity: usize, banks: usize) -> Self {
        assert!(banks > 0, "at least one bank required");
        assert!(banks <= capacity, "more banks than entries");
        Self {
            capacity,
            banks,
            rows_per_bank: capacity.div_ceil(banks),
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Total entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The bank an entry belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn bank_of(&self, slot: usize) -> usize {
        assert!(slot < self.capacity, "slot {slot} out of bounds");
        slot / self.rows_per_bank
    }

    /// Picks up to `want` free entries, each in a distinct bank, preferring
    /// the banks with the most free entries (load balancing, §4.3). Returns
    /// fewer than `want` when write-port conflicts make full-width dispatch
    /// impossible this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `free.len()` differs from the capacity.
    #[must_use]
    pub fn steer(&self, free: &BitVec64, want: usize) -> Vec<usize> {
        assert_eq!(free.len(), self.capacity, "free-vector length mismatch");
        // Gather the free entries of each bank.
        let mut per_bank: Vec<Vec<usize>> = vec![Vec::new(); self.banks];
        for slot in free.iter_ones() {
            per_bank[self.bank_of(slot)].push(slot);
        }
        // Emptiest-first: banks with more free entries are drained first so
        // occupancy stays balanced and future wide dispatches succeed.
        let mut order: Vec<usize> = (0..self.banks).collect();
        order.sort_by_key(|&b| std::cmp::Reverse(per_bank[b].len()));
        order
            .into_iter()
            .filter_map(|b| per_bank[b].first().copied())
            .take(want)
            .collect()
    }

    /// Convenience: the largest dispatch width satisfiable from `free`
    /// (number of banks with at least one free entry, capped by `want`).
    ///
    /// # Panics
    ///
    /// Panics if `free.len()` differs from the capacity.
    #[must_use]
    pub fn available_width(&self, free: &BitVec64, want: usize) -> usize {
        self.steer(free, want).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_mapping_is_contiguous() {
        let a = BankAllocator::new(16, 4);
        assert_eq!(a.bank_of(0), 0);
        assert_eq!(a.bank_of(3), 0);
        assert_eq!(a.bank_of(4), 1);
        assert_eq!(a.bank_of(15), 3);
    }

    #[test]
    fn steer_never_reuses_a_bank() {
        let a = BankAllocator::new(16, 4);
        let free = BitVec64::ones(16);
        let slots = a.steer(&free, 4);
        assert_eq!(slots.len(), 4);
        let mut banks: Vec<_> = slots.iter().map(|&s| a.bank_of(s)).collect();
        banks.sort_unstable();
        banks.dedup();
        assert_eq!(banks.len(), 4);
    }

    #[test]
    fn steer_reports_port_conflicts() {
        let a = BankAllocator::new(8, 4);
        // all free entries in bank 0
        let free = BitVec64::from_indices(8, [0, 1]);
        let slots = a.steer(&free, 4);
        assert_eq!(slots.len(), 1); // only one write port in bank 0
        assert_eq!(a.available_width(&free, 4), 1);
    }

    #[test]
    fn steer_prefers_emptier_banks() {
        let a = BankAllocator::new(8, 4);
        // bank 1 has two free entries, bank 3 has one
        let free = BitVec64::from_indices(8, [2, 3, 6]);
        let slots = a.steer(&free, 1);
        assert_eq!(slots.len(), 1);
        assert_eq!(a.bank_of(slots[0]), 1);
    }

    #[test]
    fn steer_empty_free_set() {
        let a = BankAllocator::new(8, 2);
        assert!(a.steer(&BitVec64::new(8), 2).is_empty());
    }

    #[test]
    fn single_bank_is_one_dispatch_per_cycle() {
        let a = BankAllocator::new(8, 1);
        let free = BitVec64::ones(8);
        assert_eq!(a.steer(&free, 4).len(), 1);
    }

    #[test]
    fn non_divisible_capacity() {
        let a = BankAllocator::new(10, 4); // rows_per_bank = 3
        assert_eq!(a.bank_of(9), 3);
        let free = BitVec64::ones(10);
        assert_eq!(a.steer(&free, 4).len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = BankAllocator::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "more banks than entries")]
    fn too_many_banks_panics() {
        let _ = BankAllocator::new(2, 4);
    }
}
