//! The age matrix with bit count encoding (paper §3.1).
//!
//! An [`AgeMatrix`] tracks the relative age of the instructions resident in
//! a non-collapsible queue (IQ or ROB). Each row and column is associated
//! with a queue entry; bit `(i, j)` set means *entry `j` holds an older
//! instruction than entry `i`*.
//!
//! At dispatch an instruction writes its row (everything currently valid is
//! older) and clears its column (nobody considers it older yet) — this is
//! what decouples temporal order from queue position and permits random
//! entry allocation.
//!
//! The **bit count encoding** is the paper's key extension over the classic
//! single-oldest AGE design: each requesting entry counts the number of
//! *older requesting* entries (`popcount(row & BID)`); any entry whose count
//! is below the issue width `IW` is one of the `IW` oldest and is granted,
//! all in parallel, in O(1) time.

use crate::{BitMatrix, BitVec64};

/// Age matrix over a non-collapsible queue of `n` entries.
///
/// # Examples
///
/// Selecting the two oldest ready instructions out of four in one step:
///
/// ```
/// use orinoco_matrix::{AgeMatrix, BitVec64};
///
/// let mut age = AgeMatrix::new(8);
/// // Dispatch order: slot 5, then 2, then 7 (random allocation).
/// age.dispatch(5);
/// age.dispatch(2);
/// age.dispatch(7);
/// let ready = BitVec64::from_indices(8, [2, 5, 7]);
/// // Grant the 2 oldest ready: slots 5 (oldest) and 2.
/// assert_eq!(age.select_oldest(&ready, 2), vec![5, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct AgeMatrix {
    m: BitMatrix,
    valid: BitVec64,
}

impl AgeMatrix {
    /// Creates an age matrix for a queue with `n` entries.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            m: BitMatrix::new(n, n),
            valid: BitVec64::new(n),
        }
    }

    /// Queue capacity (number of rows/columns).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.m.rows()
    }

    /// The `VLD` vector: which entries currently hold instructions.
    #[must_use]
    pub fn valid(&self) -> &BitVec64 {
        &self.valid
    }

    /// `true` if `slot` holds a live instruction.
    #[must_use]
    pub fn is_valid(&self, slot: usize) -> bool {
        self.valid.get(slot)
    }

    /// Number of live entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.valid.count_ones() as usize
    }

    /// Dispatches an instruction into `slot`: its row is set to all ones
    /// (every existing instruction is older — the front-end is in-order),
    /// its own bit is cleared, and its column is cleared in every *valid*
    /// row so no stale state survives entry reuse.
    ///
    /// The hardware clears the whole column in one array cycle; the
    /// software model clears only the valid rows (O(occupancy) instead of
    /// O(capacity)) because a row of an invalid slot is unobservable —
    /// every query masks by `VLD` (or by `SPEC`, which is cleared at
    /// free) — and is rewritten in full by the row write of its own next
    /// dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds or already valid.
    pub fn dispatch(&mut self, slot: usize) {
        assert!(!self.valid.get(slot), "dispatch into live slot {slot}");
        self.m.set_row_all(slot);
        self.m.clear(slot, slot);
        self.m.clear_col_masked(slot, &self.valid);
        self.valid.set(slot);
    }

    /// [`AgeMatrix::dispatch`] for callers that keep an **external**
    /// authoritative age order (the pipeline's order deques) and never read
    /// the matrix on their hot path: in release builds only the `VLD`
    /// vector is maintained and the row/column writes — the dominant cost
    /// of dispatch — are skipped, leaving the matrix contents stale. Debug
    /// builds maintain the matrix in full so the walk-vs-matrix oracle
    /// cross-checks stay live.
    ///
    /// After a lazy dispatch every matrix-reading query (`select_*`,
    /// `is_older`, `rank`, `younger_than`, …) is meaningless in release
    /// builds; only `valid()`-derived state may be read.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds or already valid.
    pub fn dispatch_lazy(&mut self, slot: usize) {
        assert!(!self.valid.get(slot), "dispatch into live slot {slot}");
        #[cfg(debug_assertions)]
        {
            self.m.set_row_all(slot);
            self.m.clear(slot, slot);
            self.m.clear_col_masked(slot, &self.valid);
        }
        self.valid.set(slot);
    }

    /// Dispatches an instruction whose set of *older* entries is exactly
    /// `older` (used for per-type partial ordering, §5 Figure 13, and as the
    /// building block for criticality dispatch).
    ///
    /// The column is cleared in every row, so entries outside `older` will
    /// simply never see this instruction as older than themselves.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is live, out of bounds, `older` has the wrong
    /// length, or `older` claims the instruction is older than itself.
    pub fn dispatch_masked(&mut self, slot: usize, older: &BitVec64) {
        assert!(!self.valid.get(slot), "dispatch into live slot {slot}");
        assert!(!older.get(slot), "instruction cannot be older than itself");
        self.m.write_row(slot, older);
        self.m.clear_col_masked(slot, &self.valid);
        self.valid.set(slot);
    }

    /// Dispatches a **critical** instruction (§3.1 "Criticality-based
    /// Scheduling"): only the currently valid *critical* entries (`cri`)
    /// appear in its row, so every non-critical instruction — past or
    /// future — counts as younger, making critical instructions "older"
    /// than non-critical ones for the bit count encoding.
    ///
    /// The column write clears the bit in critical rows (they were
    /// dispatched earlier, hence are genuinely older) and **sets** it in
    /// live non-critical rows so instructions dispatched before this slot
    /// was recycled also treat it as older.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`AgeMatrix::dispatch_masked`].
    pub fn dispatch_critical(&mut self, slot: usize, cri: &BitVec64) {
        assert!(!self.valid.get(slot), "dispatch into live slot {slot}");
        let mut older = cri.and(&self.valid);
        older.clear(slot);
        self.m.write_row(slot, &older);
        let mut noncrit = self.valid.and(&cri.not());
        noncrit.clear(slot);
        self.m.clear_col_masked(slot, &self.valid);
        self.m.set_col_masked(slot, &noncrit);
        self.valid.set(slot);
    }

    /// Removes the instruction in `slot` (issue from the IQ, commit or
    /// squash from the ROB). The matrix itself keeps stale bits; they are
    /// scrubbed by the row write / column clear of the next dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not valid.
    pub fn free(&mut self, slot: usize) {
        assert!(self.valid.get(slot), "free of empty slot {slot}");
        self.valid.clear(slot);
    }

    /// Bit count read for one entry: how many of the entries in `request`
    /// are older than `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds or `request` has the wrong length.
    #[must_use]
    pub fn older_count(&self, slot: usize, request: &BitVec64) -> u32 {
        self.m.row_and_count(slot, request)
    }

    /// Selects up to `width` oldest entries among `request`, returned in
    /// age order (oldest first). This is the paper's parallel bit-count
    /// arbitration: entry `i` is granted iff
    /// `popcount(row_i & request) < width`.
    ///
    /// Requesting entries that are not valid are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `request.len()` differs from the capacity.
    #[must_use]
    pub fn select_oldest(&self, request: &BitVec64, width: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.select_oldest_into(request, width, &mut out);
        out
    }

    /// Allocation-free counterpart of [`AgeMatrix::select_oldest`]: grants
    /// are written into the caller-owned `out` (cleared first, capacity
    /// reused), oldest first. No intermediate `request & valid` vector is
    /// materialised — the ranking reads run three-way against the raw
    /// request and `VLD` vectors.
    ///
    /// # Panics
    ///
    /// Panics if `request.len()` differs from the capacity.
    pub fn select_oldest_into(
        &self,
        request: &BitVec64,
        width: usize,
        out: &mut Vec<usize>,
    ) {
        assert_eq!(request.len(), self.capacity(), "request length mismatch");
        out.clear();
        if width == 0 {
            return;
        }
        // Rank-bucketing, no sort: a granted entry's rank (its count of
        // older requesting entries) indexes its position in the output
        // directly, because granted ranks always form the dense prefix
        // 0..k-1 — if rank r is granted, its r older candidates have ranks
        // below r and are granted too. Ranks never reach the capacity, so
        // `rank < width` can be tested against the clamped `limit`.
        let limit = width.min(self.capacity());
        out.resize(limit, usize::MAX);
        let mut found = 0usize;
        for (wi, (&rw, &vw)) in request.words().iter().zip(self.valid.words()).enumerate() {
            let mut m = rw & vw;
            while m != 0 {
                let slot = wi * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                if let Some(rank) =
                    self.m.row_and2_rank_below(slot, request, &self.valid, limit as u32)
                {
                    let rank = rank as usize;
                    if out[rank] != usize::MAX {
                        // A rank tie is only possible under a partial order
                        // (`dispatch_masked`); resolve it exactly as the
                        // scalar path always has.
                        self.select_oldest_into_ref(request, width, out);
                        return;
                    }
                    out[rank] = slot;
                    found += 1;
                }
            }
        }
        out.truncate(found);
        #[cfg(debug_assertions)]
        {
            let mut reference = Vec::new();
            self.select_oldest_into_ref(request, width, &mut reference);
            assert_eq!(*out, reference, "word-parallel select diverged from scalar oracle");
        }
    }

    /// The scalar reference implementation of
    /// [`AgeMatrix::select_oldest_into`] (per-candidate full-row popcount +
    /// sort by rank), retained as the oracle the word-parallel path is
    /// cross-checked against in debug builds and property tests, and as the
    /// tie-breaking fallback for partial orders.
    #[doc(hidden)]
    pub fn select_oldest_into_ref(
        &self,
        request: &BitVec64,
        width: usize,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        for slot in request.iter_ones_and(&self.valid) {
            let count = self.m.row_and2_count(slot, request, &self.valid);
            if (count as usize) < width {
                out.push(slot);
            }
        }
        // Ranks within the requesting set are distinct (up to partial-order
        // ties), so this sort is a permutation into age order; grant counts
        // are tiny (≤ width).
        out.sort_unstable_by_key(|&slot| {
            self.m.row_and2_count(slot, request, &self.valid)
        });
    }

    /// The grant vector corresponding to [`AgeMatrix::select_oldest`] — the
    /// raw sense-amplifier outputs of the PIM implementation.
    ///
    /// # Panics
    ///
    /// Panics if `request.len()` differs from the capacity.
    #[must_use]
    pub fn grant_mask(&self, request: &BitVec64, width: usize) -> BitVec64 {
        let mut out = BitVec64::new(self.capacity());
        self.grant_mask_into(request, width, &mut out);
        out
    }

    /// Allocation-free counterpart of [`AgeMatrix::grant_mask`]: the grant
    /// bits are written into the caller-owned `out` (cleared first). Each
    /// candidate costs one early-exiting rank read; no grant list is ever
    /// materialised or sorted (the mask is insensitive to grant order).
    ///
    /// # Panics
    ///
    /// Panics if `request.len()` or `out.len()` differs from the capacity.
    pub fn grant_mask_into(&self, request: &BitVec64, width: usize, out: &mut BitVec64) {
        assert_eq!(request.len(), self.capacity(), "request length mismatch");
        assert_eq!(out.len(), self.capacity(), "grant buffer length mismatch");
        out.clear_all();
        if width == 0 {
            return;
        }
        let limit = width.min(self.capacity()) as u32;
        for (wi, (&rw, &vw)) in request.words().iter().zip(self.valid.words()).enumerate() {
            let mut m = rw & vw;
            while m != 0 {
                let slot = wi * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                if self.m.row_and2_rank_below(slot, request, &self.valid, limit).is_some() {
                    out.set(slot);
                }
            }
        }
        #[cfg(debug_assertions)]
        {
            let mut reference = Vec::new();
            self.select_oldest_into_ref(request, width, &mut reference);
            assert_eq!(
                out.iter_ones().collect::<Vec<_>>(),
                {
                    reference.sort_unstable();
                    reference
                },
                "word-parallel grant mask diverged from scalar oracle"
            );
        }
    }

    /// Classic AGE behaviour: grants only the single oldest requesting
    /// entry (`row & request` reduction-NORs to zero).
    ///
    /// Implemented by chain-following: start at any requesting valid entry
    /// and repeatedly hop to the first older requesting entry found in the
    /// current row; each hop strictly descends the age order, so the walk
    /// lands on an entry with no older requester in O(chain × words)
    /// instead of scanning every candidate's full row. Under a total age
    /// order this is *the* oldest requester; under a partial order
    /// ([`AgeMatrix::dispatch_masked`]) it is one of the minimal
    /// requesters.
    ///
    /// # Panics
    ///
    /// Panics if `request.len()` differs from the capacity.
    #[must_use]
    pub fn select_single_oldest(&self, request: &BitVec64) -> Option<usize> {
        assert_eq!(request.len(), self.capacity(), "request length mismatch");
        let mut cur = request.first_one_and(&self.valid)?;
        for _ in 0..=self.capacity() {
            match self.m.row_first_one_and2(cur, request, &self.valid) {
                None => {
                    debug_assert!(
                        self.m.row_and2_is_zero(cur, request, &self.valid),
                        "chain landed on a non-minimal entry"
                    );
                    return Some(cur);
                }
                Some(older) => cur = older,
            }
        }
        panic!("age matrix order contains a cycle");
    }

    /// The scalar reference implementation of
    /// [`AgeMatrix::select_single_oldest`] (linear candidate scan with a
    /// full-row NOR per candidate; returns the lowest-indexed minimal
    /// requester), retained as the property-test oracle.
    #[doc(hidden)]
    #[must_use]
    pub fn select_single_oldest_ref(&self, request: &BitVec64) -> Option<usize> {
        request
            .iter_ones_and(&self.valid)
            .find(|&slot| self.m.row_and2_is_zero(slot, request, &self.valid))
    }

    /// Finds the oldest valid entry (`row & VLD == 0`): the instruction
    /// that must own the oldest exception or unresolved speculation when
    /// commit is completely blocked (§3.1, precise exception location).
    #[must_use]
    pub fn oldest_valid(&self) -> Option<usize> {
        self.valid
            .iter_ones()
            .find(|&slot| self.m.row_and_is_zero(slot, &self.valid))
    }

    /// All valid entries younger than `slot` (the column read used for
    /// instruction squash, §3.2 "Precise Exception Handling").
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn younger_than(&self, slot: usize) -> BitVec64 {
        let mut col = BitVec64::new(self.capacity());
        self.younger_than_into(slot, &mut col);
        col
    }

    /// Allocation-free counterpart of [`AgeMatrix::younger_than`]: the
    /// column is read into the caller-owned `out`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds or `out.len()` differs from the
    /// capacity.
    pub fn younger_than_into(&self, slot: usize, out: &mut BitVec64) {
        self.m.read_col_into(slot, out);
        out.and_assign(&self.valid);
    }

    /// `true` if the instruction in `a` is older than the one in `b`.
    ///
    /// # Panics
    ///
    /// Panics if either slot is out of bounds.
    #[must_use]
    pub fn is_older(&self, a: usize, b: usize) -> bool {
        self.m.get(b, a)
    }

    /// Rank of `slot` among the valid entries (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn rank(&self, slot: usize) -> u32 {
        self.m.row_and_count(slot, &self.valid)
    }

    /// All valid entries, oldest first — an O(n log n) helper for tests,
    /// debugging and statistics (the hardware never needs this order
    /// materialised).
    #[must_use]
    pub fn valid_in_age_order(&self) -> Vec<usize> {
        let mut v: Vec<(u32, usize)> = self
            .valid
            .iter_ones()
            .map(|slot| (self.rank(slot), slot))
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, s)| s).collect()
    }

    /// Row read access for composite schedulers (commit uses `row & SPEC`).
    #[must_use]
    pub(crate) fn matrix(&self) -> &BitMatrix {
        &self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(n: usize, slots: &[usize]) -> BitVec64 {
        BitVec64::from_indices(n, slots.iter().copied())
    }

    #[test]
    fn dispatch_establishes_temporal_order() {
        let mut age = AgeMatrix::new(4);
        age.dispatch(3);
        age.dispatch(0);
        age.dispatch(2);
        assert!(age.is_older(3, 0));
        assert!(age.is_older(3, 2));
        assert!(age.is_older(0, 2));
        assert!(!age.is_older(2, 0));
        assert_eq!(age.valid_in_age_order(), vec![3, 0, 2]);
    }

    #[test]
    fn select_oldest_is_exactly_the_iw_oldest() {
        let mut age = AgeMatrix::new(8);
        for s in [6, 1, 4, 0, 7] {
            age.dispatch(s);
        }
        let req = ready(8, &[0, 1, 4, 7]); // 6 not ready
        assert_eq!(age.select_oldest(&req, 2), vec![1, 4]);
        assert_eq!(age.select_oldest(&req, 10), vec![1, 4, 0, 7]);
        assert_eq!(age.select_oldest(&req, 0), Vec::<usize>::new());
    }

    #[test]
    fn select_single_oldest_matches_classic_age() {
        let mut age = AgeMatrix::new(8);
        age.dispatch(5);
        age.dispatch(3);
        let req = ready(8, &[3, 5]);
        assert_eq!(age.select_single_oldest(&req), Some(5));
        assert_eq!(age.select_single_oldest(&ready(8, &[3])), Some(3));
        assert_eq!(age.select_single_oldest(&ready(8, &[])), None);
    }

    #[test]
    fn invalid_requests_are_ignored() {
        let mut age = AgeMatrix::new(4);
        age.dispatch(1);
        // slot 2 never dispatched but requested
        let req = ready(4, &[1, 2]);
        assert_eq!(age.select_oldest(&req, 4), vec![1]);
    }

    #[test]
    fn slot_reuse_scrubs_stale_state() {
        let mut age = AgeMatrix::new(4);
        age.dispatch(0);
        age.dispatch(1);
        age.free(0); // oldest leaves
        age.dispatch(0); // slot reused: now the *youngest*
        assert!(age.is_older(1, 0));
        assert!(!age.is_older(0, 1));
        assert_eq!(age.valid_in_age_order(), vec![1, 0]);
        let req = ready(4, &[0, 1]);
        assert_eq!(age.select_oldest(&req, 1), vec![1]);
    }

    #[test]
    fn oldest_valid_finds_exception_owner() {
        let mut age = AgeMatrix::new(8);
        assert_eq!(age.oldest_valid(), None);
        age.dispatch(7);
        age.dispatch(2);
        age.dispatch(5);
        assert_eq!(age.oldest_valid(), Some(7));
        age.free(7);
        assert_eq!(age.oldest_valid(), Some(2));
    }

    #[test]
    fn younger_than_reads_column() {
        let mut age = AgeMatrix::new(8);
        age.dispatch(4);
        age.dispatch(6);
        age.dispatch(1);
        let younger = age.younger_than(6);
        assert_eq!(younger.iter_ones().collect::<Vec<_>>(), vec![1]);
        let younger = age.younger_than(4);
        assert_eq!(younger.iter_ones().collect::<Vec<_>>(), vec![1, 6]);
    }

    #[test]
    fn younger_than_excludes_freed() {
        let mut age = AgeMatrix::new(4);
        age.dispatch(0);
        age.dispatch(1);
        age.dispatch(2);
        age.free(1);
        let younger = age.younger_than(0);
        assert_eq!(younger.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn critical_dispatch_outranks_noncritical() {
        let mut age = AgeMatrix::new(8);
        let mut cri = BitVec64::new(8);
        // Two non-criticals first.
        age.dispatch(0);
        age.dispatch(1);
        // Now a critical arrives in slot 2.
        age.dispatch_critical(2, &cri);
        cri.set(2);
        // Critical slot 2 is "older" than both non-criticals.
        assert!(age.is_older(2, 0));
        assert!(age.is_older(2, 1));
        // With IW=1, the critical wins even though it is temporally youngest.
        let req = ready(8, &[0, 1, 2]);
        assert_eq!(age.select_oldest(&req, 1), vec![2]);
        // With IW=2, critical first, then the oldest non-critical.
        assert_eq!(age.select_oldest(&req, 2), vec![2, 0]);
    }

    #[test]
    fn critical_order_preserved_among_criticals() {
        let mut age = AgeMatrix::new(8);
        let mut cri = BitVec64::new(8);
        age.dispatch_critical(3, &cri);
        cri.set(3);
        age.dispatch_critical(5, &cri);
        cri.set(5);
        assert!(age.is_older(3, 5));
        let req = ready(8, &[3, 5]);
        assert_eq!(age.select_oldest(&req, 1), vec![3]);
    }

    #[test]
    fn critical_dispatch_into_recycled_slot_still_older_than_stale_rows() {
        let mut age = AgeMatrix::new(4);
        let mut cri = BitVec64::new(4);
        // N0 dispatched, then X in slot 2, X's dispatch cleared column 2 in
        // N0's row. X issues; slot 2 recycled by a critical C.
        age.dispatch(0); // N0
        age.dispatch(2); // X
        age.free(2);
        age.dispatch_critical(2, &cri); // C in recycled slot
        cri.set(2);
        // N0 must still see C as older.
        assert!(age.is_older(2, 0));
        let req = ready(4, &[0, 2]);
        assert_eq!(age.select_oldest(&req, 1), vec![2]);
    }

    #[test]
    fn masked_dispatch_partial_ordering_per_type() {
        // Per-type partial order (Fig. 13): memory ops only track older
        // memory ops; arbitration happens within the type mask.
        let mut age = AgeMatrix::new(8);
        let mut mem_mask = BitVec64::new(8);
        // int op at 0
        age.dispatch_masked(0, &BitVec64::new(8));
        // mem op at 1: older mem ops = none
        age.dispatch_masked(1, &mem_mask.and(age.valid()));
        mem_mask.set(1);
        // mem op at 2: older mem ops = {1}
        age.dispatch_masked(2, &mem_mask.and(age.valid()));
        mem_mask.set(2);
        let mem_req = ready(8, &[1, 2]);
        assert_eq!(age.select_oldest(&mem_req, 1), vec![1]);
    }

    #[test]
    fn rank_counts_older_valid() {
        let mut age = AgeMatrix::new(8);
        age.dispatch(3);
        age.dispatch(7);
        age.dispatch(0);
        assert_eq!(age.rank(3), 0);
        assert_eq!(age.rank(7), 1);
        assert_eq!(age.rank(0), 2);
    }

    #[test]
    fn grant_mask_matches_select() {
        let mut age = AgeMatrix::new(8);
        for s in [2, 4, 6] {
            age.dispatch(s);
        }
        let req = ready(8, &[2, 4, 6]);
        let mask = age.grant_mask(&req, 2);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn occupancy_tracks_valid() {
        let mut age = AgeMatrix::new(4);
        assert_eq!(age.occupancy(), 0);
        age.dispatch(1);
        age.dispatch(2);
        assert_eq!(age.occupancy(), 2);
        age.free(1);
        assert_eq!(age.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "live slot")]
    fn double_dispatch_panics() {
        let mut age = AgeMatrix::new(2);
        age.dispatch(0);
        age.dispatch(0);
    }

    #[test]
    #[should_panic(expected = "empty slot")]
    fn free_empty_panics() {
        AgeMatrix::new(2).free(1);
    }
}
