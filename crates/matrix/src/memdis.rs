//! The memory disambiguation matrix (§3.3, Figure 6).
//!
//! Rows are load-queue entries, columns are store-queue entries. When a
//! load issues it records the older stores whose addresses are still
//! unresolved; when a store resolves it clears its column for the loads it
//! does not conflict with (conflicting loads are squashed or forwarded by
//! the LSQ, outside this matrix). A load whose row reduction-NORs to zero
//! is past all possible aliases and becomes **non-speculative**, which in
//! turn clears its `SPEC` bit in the ROB and unlocks early, out-of-order
//! commit of loads.

use crate::{BitMatrix, BitVec64};

/// Memory disambiguation matrix over an `lq × sq` load/store queue pair.
///
/// # Examples
///
/// ```
/// use orinoco_matrix::{BitVec64, MemDisambigMatrix};
///
/// let mut mdm = MemDisambigMatrix::new(8, 4);
/// // A load in LQ slot 2 issues past two unresolved stores (SQ 0 and 1).
/// mdm.load_issue(2, &BitVec64::from_indices(4, [0, 1]));
/// assert!(!mdm.load_nonspeculative(2));
/// // Store 0 resolves, no conflict with load 2.
/// mdm.store_resolved(0, &BitVec64::from_indices(8, [2]));
/// assert!(!mdm.load_nonspeculative(2));
/// // Store 1 resolves too.
/// mdm.store_resolved(1, &BitVec64::from_indices(8, [2]));
/// assert!(mdm.load_nonspeculative(2));
/// ```
#[derive(Clone, Debug)]
pub struct MemDisambigMatrix {
    m: BitMatrix,
}

impl MemDisambigMatrix {
    /// Creates a matrix for `lq` load-queue and `sq` store-queue entries.
    #[must_use]
    pub fn new(lq: usize, sq: usize) -> Self {
        Self { m: BitMatrix::new(lq, sq) }
    }

    /// Load-queue capacity (rows).
    #[must_use]
    pub fn lq_capacity(&self) -> usize {
        self.m.rows()
    }

    /// Store-queue capacity (columns).
    #[must_use]
    pub fn sq_capacity(&self) -> usize {
        self.m.cols()
    }

    /// A load issues from LQ entry `lq_slot`: record the older stores with
    /// unresolved addresses it speculates past.
    ///
    /// # Panics
    ///
    /// Panics if `lq_slot` is out of bounds or the vector length is not the
    /// SQ capacity.
    pub fn load_issue(&mut self, lq_slot: usize, unresolved_older_stores: &BitVec64) {
        self.m.write_row(lq_slot, unresolved_older_stores);
    }

    /// The store in SQ entry `sq_slot` resolved its address and found **no
    /// conflict** with the loads in `no_conflict_loads`: clear those bits of
    /// its column. Conflicting loads keep their bit (they are squashed or
    /// replayed by the LSQ and re-issue later).
    ///
    /// # Panics
    ///
    /// Panics if `sq_slot` is out of bounds or the mask length is not the
    /// LQ capacity.
    pub fn store_resolved(&mut self, sq_slot: usize, no_conflict_loads: &BitVec64) {
        self.m.clear_col_masked(sq_slot, no_conflict_loads);
    }

    /// Unconditionally clears the store's column (e.g. the store was
    /// squashed, so nobody can conflict with it any more).
    ///
    /// # Panics
    ///
    /// Panics if `sq_slot` is out of bounds.
    pub fn store_cleared(&mut self, sq_slot: usize) {
        self.m.clear_col(sq_slot);
    }

    /// Clears a load's row (the load was squashed or its LQ entry is being
    /// recycled).
    ///
    /// # Panics
    ///
    /// Panics if `lq_slot` is out of bounds.
    pub fn load_cleared(&mut self, lq_slot: usize) {
        self.m.clear_row(lq_slot);
    }

    /// `true` if the load's row reduction-NORs to zero: every older store
    /// has resolved its address without requiring a replay, so the load is
    /// non-speculative (§3.3).
    ///
    /// # Panics
    ///
    /// Panics if `lq_slot` is out of bounds.
    #[must_use]
    pub fn load_nonspeculative(&self, lq_slot: usize) -> bool {
        self.m.row_is_zero(lq_slot)
    }

    /// Number of unresolved older stores the load still waits on.
    ///
    /// # Panics
    ///
    /// Panics if `lq_slot` is out of bounds.
    #[must_use]
    pub fn pending_stores(&self, lq_slot: usize) -> u32 {
        self.m.row_count(lq_slot)
    }

    /// The speculative loads tracked against store `sq_slot` (its column
    /// read) — the set the store must check for conflicts when its address
    /// resolves.
    ///
    /// # Panics
    ///
    /// Panics if `sq_slot` is out of bounds.
    #[must_use]
    pub fn loads_waiting_on(&self, sq_slot: usize) -> BitVec64 {
        self.m.read_col(sq_slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_dimensions_match_paper() {
        let mdm = MemDisambigMatrix::new(72, 56);
        assert_eq!(mdm.lq_capacity(), 72);
        assert_eq!(mdm.sq_capacity(), 56);
    }

    #[test]
    fn load_with_no_unresolved_stores_is_immediately_nonspeculative() {
        let mut mdm = MemDisambigMatrix::new(4, 4);
        mdm.load_issue(0, &BitVec64::new(4));
        assert!(mdm.load_nonspeculative(0));
        assert_eq!(mdm.pending_stores(0), 0);
    }

    #[test]
    fn store_resolution_releases_loads_incrementally() {
        let mut mdm = MemDisambigMatrix::new(4, 4);
        mdm.load_issue(1, &BitVec64::from_indices(4, [0, 2, 3]));
        assert_eq!(mdm.pending_stores(1), 3);
        mdm.store_resolved(2, &BitVec64::from_indices(4, [1]));
        assert_eq!(mdm.pending_stores(1), 2);
        mdm.store_resolved(0, &BitVec64::from_indices(4, [1]));
        mdm.store_resolved(3, &BitVec64::from_indices(4, [1]));
        assert!(mdm.load_nonspeculative(1));
    }

    #[test]
    fn conflicting_load_keeps_waiting() {
        let mut mdm = MemDisambigMatrix::new(4, 4);
        mdm.load_issue(1, &BitVec64::from_indices(4, [0]));
        mdm.load_issue(2, &BitVec64::from_indices(4, [0]));
        // Store 0 resolves; load 2 conflicts (it is not in the no-conflict
        // mask), load 1 does not.
        mdm.store_resolved(0, &BitVec64::from_indices(4, [1]));
        assert!(mdm.load_nonspeculative(1));
        assert!(!mdm.load_nonspeculative(2));
    }

    #[test]
    fn column_read_lists_tracked_loads() {
        let mut mdm = MemDisambigMatrix::new(8, 4);
        mdm.load_issue(3, &BitVec64::from_indices(4, [1]));
        mdm.load_issue(6, &BitVec64::from_indices(4, [1, 2]));
        let waiting = mdm.loads_waiting_on(1);
        assert_eq!(waiting.iter_ones().collect::<Vec<_>>(), vec![3, 6]);
        assert_eq!(
            mdm.loads_waiting_on(2).iter_ones().collect::<Vec<_>>(),
            vec![6]
        );
    }

    #[test]
    fn squashed_store_releases_everyone() {
        let mut mdm = MemDisambigMatrix::new(4, 4);
        mdm.load_issue(0, &BitVec64::from_indices(4, [3]));
        mdm.load_issue(1, &BitVec64::from_indices(4, [3]));
        mdm.store_cleared(3);
        assert!(mdm.load_nonspeculative(0));
        assert!(mdm.load_nonspeculative(1));
    }

    #[test]
    fn squashed_load_clears_row() {
        let mut mdm = MemDisambigMatrix::new(4, 4);
        mdm.load_issue(2, &BitVec64::from_indices(4, [0, 1]));
        mdm.load_cleared(2);
        assert!(mdm.load_nonspeculative(2));
        assert!(mdm.loads_waiting_on(0).is_zero());
    }

    #[test]
    fn reissue_overwrites_previous_row() {
        let mut mdm = MemDisambigMatrix::new(4, 4);
        mdm.load_issue(2, &BitVec64::from_indices(4, [0, 1]));
        // replayed load re-issues later when only store 1 is unresolved
        mdm.load_issue(2, &BitVec64::from_indices(4, [1]));
        assert_eq!(mdm.pending_stores(2), 1);
        mdm.store_resolved(1, &BitVec64::from_indices(4, [2]));
        assert!(mdm.load_nonspeculative(2));
    }
}
