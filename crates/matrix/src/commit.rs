//! Unordered commit: the commit dependency matrix (§3.2) and the merged
//! age-matrix + `SPEC`-vector scheme of Figure 4.
//!
//! The commit conditions of Bell & Lipasti split into a *local* part (the
//! instruction completed, did not fault, is on the right path) and a
//! *global* part (no **older** instruction may still raise misspeculation or
//! an exception). The global part is a dependency between instructions and
//! is tracked here:
//!
//! * [`CommitDepMatrix`] is the standalone design: at dispatch an
//!   instruction's row records every older *speculative* instruction
//!   (memory ops before translation, unresolved branches, barriers, …);
//!   when such an instruction is proven safe it clears its column. A
//!   completed instruction commits when its row reduction-NORs to zero.
//! * [`CommitScheduler`] is the merged design actually used by Orinoco: it
//!   reuses the ROB's [`AgeMatrix`] rows and a single `SPEC` vector —
//!   `row & SPEC == 0` is exactly the standalone row — cutting the matrix
//!   area by ~40% for the evaluated configuration.
//!
//! Both are exercised by the test-suite and checked equivalent by property
//! tests in the crate's `tests/` tree.

use crate::{AgeMatrix, BitMatrix, BitVec64};

/// Standalone commit dependency matrix (§3.2, Figure 5).
///
/// # Examples
///
/// ```
/// use orinoco_matrix::{BitVec64, CommitDepMatrix};
///
/// let mut cdm = CommitDepMatrix::new(8);
/// // A speculative load occupies slot 0; a younger add in slot 1 depends
/// // on it having translated successfully before it may commit.
/// cdm.dispatch(1, &BitVec64::from_indices(8, [0]));
/// assert!(!cdm.can_commit(1));
/// cdm.clear_safe(0); // load accessed the TLB without faulting
/// assert!(cdm.can_commit(1));
/// ```
#[derive(Clone, Debug)]
pub struct CommitDepMatrix {
    m: BitMatrix,
}

impl CommitDepMatrix {
    /// Creates a commit dependency matrix for an `n`-entry ROB.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { m: BitMatrix::new(n, n) }
    }

    /// ROB capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.m.rows()
    }

    /// Dispatch: record in `slot`'s row every older instruction that may
    /// still raise an exception or misspeculate.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds, `older_speculative` has the wrong
    /// length, or marks the instruction as depending on itself.
    pub fn dispatch(&mut self, slot: usize, older_speculative: &BitVec64) {
        assert!(
            !older_speculative.get(slot),
            "instruction cannot commit-depend on itself"
        );
        self.m.write_row(slot, older_speculative);
    }

    /// The instruction in `slot` is now known safe (branch resolved
    /// correctly, address translated without fault, FP op can only accrue
    /// status): clear its column so younger instructions stop waiting.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    pub fn clear_safe(&mut self, slot: usize) {
        self.m.clear_col(slot);
    }

    /// `true` if every commit dependency of `slot` has been discharged
    /// (row reduction-NORs to zero).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn can_commit(&self, slot: usize) -> bool {
        self.m.row_is_zero(slot)
    }

    /// Number of outstanding commit dependencies of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn pending(&self, slot: usize) -> u32 {
        self.m.row_count(slot)
    }
}

/// Merged commit scheduler: ROB age matrix + `SPEC` vector (Figure 4).
///
/// Tracks, for a non-collapsible ROB,
/// * relative instruction age (for squash, precise exceptions and
///   commit-width arbitration), and
/// * which instructions are still *speculative* — may yet raise an
///   exception or misspeculation.
///
/// A completed instruction is granted commit when `row & SPEC` reduction-
/// NORs to zero, i.e. no **older** instruction is still speculative. This
/// equals the standalone [`CommitDepMatrix`] because `row` already encodes
/// "older than me" and `SPEC` is global.
///
/// # Examples
///
/// ```
/// use orinoco_matrix::{BitVec64, CommitScheduler};
///
/// let mut rob = CommitScheduler::new(16);
/// rob.dispatch(3, true);  // an unresolved branch
/// rob.dispatch(9, false); // a safe ALU op, younger than the branch
/// let completed = BitVec64::from_indices(16, [9]);
/// // The ALU op completed but the older branch is unresolved: no grant.
/// assert!(rob.commit_grants(&completed, 4).is_empty());
/// rob.mark_safe(3);
/// assert_eq!(rob.commit_grants(&completed, 4), vec![9]);
/// ```
#[derive(Clone, Debug)]
pub struct CommitScheduler {
    age: AgeMatrix,
    spec: BitVec64,
}

impl CommitScheduler {
    /// Creates a merged commit scheduler for an `n`-entry ROB.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            age: AgeMatrix::new(n),
            spec: BitVec64::new(n),
        }
    }

    /// ROB capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.age.capacity()
    }

    /// Occupied entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.age.occupancy()
    }

    /// The underlying age matrix (read-only), for squash/ordering queries.
    #[must_use]
    pub fn age(&self) -> &AgeMatrix {
        &self.age
    }

    /// The current `SPEC` vector.
    #[must_use]
    pub fn spec(&self) -> &BitVec64 {
        &self.spec
    }

    /// Dispatches an instruction into ROB entry `slot`. `speculative`
    /// instructions (memory ops before translation, branches before
    /// resolution, barriers, potential FP traps) set their `SPEC` bit.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is live or out of bounds.
    pub fn dispatch(&mut self, slot: usize, speculative: bool) {
        self.age.dispatch(slot);
        self.spec.assign(slot, speculative);
    }

    /// [`CommitScheduler::dispatch`] via [`AgeMatrix::dispatch_lazy`]: for
    /// callers whose hot path derives commit grants from an external age
    /// order (the ROB's order deque) and reads only the `VLD`/`SPEC`
    /// vectors. Release builds skip the age-matrix row/column maintenance;
    /// debug builds keep the matrix exact for the oracle cross-checks.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is live or out of bounds.
    pub fn dispatch_lazy(&mut self, slot: usize, speculative: bool) {
        self.age.dispatch_lazy(slot);
        self.spec.assign(slot, speculative);
    }

    /// The instruction in `slot` can no longer raise misspeculation or an
    /// exception: clear its `SPEC` bit (the column clear of the standalone
    /// matrix).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    pub fn mark_safe(&mut self, slot: usize) {
        self.spec.clear(slot);
    }

    /// Re-marks `slot` speculative (e.g. a load that must replay).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    pub fn mark_speculative(&mut self, slot: usize) {
        self.spec.set(slot);
    }

    /// `true` if `slot` still has its `SPEC` bit set.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn is_speculative(&self, slot: usize) -> bool {
        self.spec.get(slot)
    }

    /// `true` if no *older* instruction is still speculative — `slot`'s
    /// global commit condition (its own `SPEC` bit is a local condition and
    /// deliberately not part of this check; an instruction that completed
    /// without fault has already cleared it).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds or not valid.
    #[must_use]
    pub fn globally_safe(&self, slot: usize) -> bool {
        assert!(self.age.is_valid(slot), "query for empty slot {slot}");
        self.age.matrix().row_and_is_zero(slot, &self.spec)
    }

    /// Grants commit to up to `width` instructions this cycle: among the
    /// `completed` entries whose row ANDed with `SPEC` reduction-NORs to
    /// zero, the `width` oldest are selected with the bit count encoding.
    /// Returned oldest-first.
    ///
    /// # Panics
    ///
    /// Panics if `completed.len()` differs from the capacity.
    #[must_use]
    pub fn commit_grants(&self, completed: &BitVec64, width: usize) -> Vec<usize> {
        let mut candidates = BitVec64::new(self.capacity());
        let mut out = Vec::new();
        self.commit_grants_into(completed, width, &mut candidates, &mut out);
        out
    }

    /// Allocation-free counterpart of [`CommitScheduler::commit_grants`]:
    /// the candidate vector and grant list are caller-owned scratch buffers
    /// (both cleared first, capacity reused).
    ///
    /// # Panics
    ///
    /// Panics if `completed.len()` or `candidates.len()` differs from the
    /// capacity.
    pub fn commit_grants_into(
        &self,
        completed: &BitVec64,
        width: usize,
        candidates: &mut BitVec64,
        out: &mut Vec<usize>,
    ) {
        assert_eq!(candidates.len(), self.capacity(), "candidate buffer length mismatch");
        assert_eq!(completed.len(), self.capacity(), "completed length mismatch");
        candidates.clear_all();
        // Word-parallel candidate scan: completed & VLD & !SPEC filters
        // 64 entries per AND; only survivors pay the row reduction-NOR.
        for (wi, (&cw, (&vw, &sw))) in completed
            .words()
            .iter()
            .zip(self.age.valid().words().iter().zip(self.spec.words()))
            .enumerate()
        {
            let mut m = cw & vw & !sw;
            while m != 0 {
                let slot = wi * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                if self.age.matrix().row_and_is_zero(slot, &self.spec) {
                    candidates.set(slot);
                }
            }
        }
        self.age.select_oldest_into(candidates, width, out);
    }

    /// `true` if at least one completed entry would be granted commit this
    /// cycle — equivalent to `!commit_grants(completed, 1).is_empty()` but
    /// without allocating or ranking (the oldest candidate always has rank
    /// zero, so any candidate implies a grant).
    ///
    /// # Panics
    ///
    /// Panics if `completed.len()` differs from the capacity.
    #[must_use]
    pub fn any_commit_grant(&self, completed: &BitVec64) -> bool {
        assert_eq!(completed.len(), self.capacity(), "completed length mismatch");
        for (wi, (&cw, (&vw, &sw))) in completed
            .words()
            .iter()
            .zip(self.age.valid().words().iter().zip(self.spec.words()))
            .enumerate()
        {
            let mut m = cw & vw & !sw;
            while m != 0 {
                let slot = wi * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                if self.age.matrix().row_and_is_zero(slot, &self.spec) {
                    return true;
                }
            }
        }
        false
    }

    /// In-order commit grants for the IOC baseline: the `width` oldest
    /// valid instructions, stopping at the first that is not completed or
    /// not safe.
    ///
    /// # Panics
    ///
    /// Panics if `completed.len()` differs from the capacity.
    #[must_use]
    pub fn commit_grants_in_order(&self, completed: &BitVec64, width: usize) -> Vec<usize> {
        let mut grants = Vec::new();
        self.commit_grants_in_order_into(completed, width, &mut grants);
        grants
    }

    /// Allocation-free counterpart of
    /// [`CommitScheduler::commit_grants_in_order`]: the `width` oldest
    /// valid entries are rank-bucketed straight into the caller-owned `out`
    /// (no materialised age order, no sort), then truncated at the first
    /// entry that is not completed-and-safe.
    ///
    /// # Panics
    ///
    /// Panics if `completed.len()` differs from the capacity.
    pub fn commit_grants_in_order_into(
        &self,
        completed: &BitVec64,
        width: usize,
        out: &mut Vec<usize>,
    ) {
        assert_eq!(completed.len(), self.capacity(), "completed length mismatch");
        out.clear();
        if width == 0 {
            return;
        }
        let limit = width.min(self.capacity());
        out.resize(limit, usize::MAX);
        let mut found = 0usize;
        let valid = self.age.valid();
        for (wi, &vw) in valid.words().iter().enumerate() {
            let mut m = vw;
            while m != 0 {
                let slot = wi * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                if let Some(rank) =
                    self.age.matrix().row_and_rank_below(slot, valid, limit as u32)
                {
                    let rank = rank as usize;
                    if out[rank] != usize::MAX {
                        // Partial-order rank tie: fall back to the ordered
                        // walk with its historical slot-index tie-break.
                        out.clear();
                        for s in self.age.valid_in_age_order().into_iter().take(limit) {
                            if completed.get(s) && !self.spec.get(s) {
                                out.push(s);
                            } else {
                                break;
                            }
                        }
                        return;
                    }
                    out[rank] = slot;
                    found += 1;
                }
            }
        }
        out.truncate(found);
        let stop = out
            .iter()
            .position(|&s| !completed.get(s) || self.spec.get(s))
            .unwrap_or(out.len());
        out.truncate(stop);
        #[cfg(debug_assertions)]
        {
            let mut reference = Vec::new();
            for s in self.age.valid_in_age_order().into_iter().take(limit) {
                if completed.get(s) && !self.spec.get(s) {
                    reference.push(s);
                } else {
                    break;
                }
            }
            assert_eq!(*out, reference, "in-order grant bucketing diverged from age order");
        }
    }

    /// When nothing can commit, the head of the machine is the oldest
    /// valid instruction — the owner of the blocking exception or
    /// unresolved speculation (§3.1/§3.2 precise exceptions).
    #[must_use]
    pub fn oldest_blocking(&self) -> Option<usize> {
        self.age.oldest_valid()
    }

    /// Entries younger than `slot`, for squash on misspeculation.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    #[must_use]
    pub fn younger_than(&self, slot: usize) -> BitVec64 {
        self.age.younger_than(slot)
    }

    /// Frees a committed or squashed entry.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not valid.
    pub fn free(&mut self, slot: usize) {
        self.age.free(slot);
        self.spec.clear(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_matrix_tracks_dependencies() {
        let mut cdm = CommitDepMatrix::new(8);
        let older = BitVec64::from_indices(8, [0, 2]);
        cdm.dispatch(5, &older);
        assert_eq!(cdm.pending(5), 2);
        assert!(!cdm.can_commit(5));
        cdm.clear_safe(0);
        assert_eq!(cdm.pending(5), 1);
        cdm.clear_safe(2);
        assert!(cdm.can_commit(5));
    }

    #[test]
    fn standalone_dispatch_overwrites_stale_row() {
        let mut cdm = CommitDepMatrix::new(4);
        cdm.dispatch(1, &BitVec64::from_indices(4, [0]));
        // slot 1 recycled with no deps
        cdm.dispatch(1, &BitVec64::new(4));
        assert!(cdm.can_commit(1));
    }

    #[test]
    fn merged_grants_require_older_safe() {
        let mut rob = CommitScheduler::new(8);
        rob.dispatch(0, true); // speculative branch
        rob.dispatch(1, false);
        rob.dispatch(2, false);
        let completed = BitVec64::from_indices(8, [1, 2]);
        assert!(rob.commit_grants(&completed, 4).is_empty());
        rob.mark_safe(0);
        // branch itself not completed, so only 1 and 2 commit, in age order
        assert_eq!(rob.commit_grants(&completed, 4), vec![1, 2]);
    }

    #[test]
    fn merged_grants_respect_commit_width() {
        let mut rob = CommitScheduler::new(8);
        for s in 0..6 {
            rob.dispatch(s, false);
        }
        let completed = BitVec64::from_indices(8, 0..6);
        assert_eq!(rob.commit_grants(&completed, 3), vec![0, 1, 2]);
    }

    #[test]
    fn own_spec_bit_blocks_own_commit_but_not_others() {
        let mut rob = CommitScheduler::new(8);
        rob.dispatch(0, false);
        rob.dispatch(1, true); // younger, still speculative
        let completed = BitVec64::from_indices(8, [0, 1]);
        // Older safe instruction commits; the speculative one does not
        // (its own SPEC bit is a local condition).
        assert_eq!(rob.commit_grants(&completed, 4), vec![0]);
    }

    #[test]
    fn unordered_commit_passes_stalled_older() {
        let mut rob = CommitScheduler::new(8);
        rob.dispatch(0, false); // long-latency op, not completed
        rob.dispatch(1, false); // completed younger op
        let completed = BitVec64::from_indices(8, [1]);
        // 1 commits out of order past 0.
        assert_eq!(rob.commit_grants(&completed, 4), vec![1]);
        // while IOC blocks
        assert!(rob.commit_grants_in_order(&completed, 4).is_empty());
    }

    #[test]
    fn in_order_baseline_stops_at_first_incomplete() {
        let mut rob = CommitScheduler::new(8);
        for s in 0..4 {
            rob.dispatch(s, false);
        }
        let completed = BitVec64::from_indices(8, [0, 1, 3]);
        assert_eq!(rob.commit_grants_in_order(&completed, 4), vec![0, 1]);
    }

    #[test]
    fn replay_remarks_speculative() {
        let mut rob = CommitScheduler::new(4);
        rob.dispatch(0, true);
        rob.dispatch(1, false);
        rob.mark_safe(0);
        assert!(rob.globally_safe(1));
        rob.mark_speculative(0); // replay trap
        assert!(!rob.globally_safe(1));
        assert!(rob.is_speculative(0));
    }

    #[test]
    fn oldest_blocking_locates_stall_owner() {
        let mut rob = CommitScheduler::new(8);
        rob.dispatch(6, true);
        rob.dispatch(2, false);
        assert_eq!(rob.oldest_blocking(), Some(6));
        rob.free(6);
        assert_eq!(rob.oldest_blocking(), Some(2));
    }

    #[test]
    fn squash_set_comes_from_age_matrix() {
        let mut rob = CommitScheduler::new(8);
        rob.dispatch(3, true); // branch
        rob.dispatch(5, false);
        rob.dispatch(1, false);
        let squash = rob.younger_than(3);
        assert_eq!(squash.iter_ones().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn free_clears_spec_bit() {
        let mut rob = CommitScheduler::new(4);
        rob.dispatch(0, true);
        rob.free(0);
        rob.dispatch(0, false);
        assert!(!rob.is_speculative(0));
    }

    #[test]
    fn merged_equals_standalone_on_a_scenario() {
        // Same dispatch/safety schedule driven into both designs.
        let n = 16;
        let mut merged = CommitScheduler::new(n);
        let mut standalone = CommitDepMatrix::new(n);
        let mut spec_now = BitVec64::new(n);

        let dispatches = [(0, true), (1, false), (2, true), (3, false), (4, false)];
        for &(slot, speculative) in &dispatches {
            standalone.dispatch(slot, &spec_now);
            merged.dispatch(slot, speculative);
            if speculative {
                spec_now.set(slot);
            }
        }
        for slot in [1usize, 3, 4] {
            assert_eq!(
                merged.globally_safe(slot),
                standalone.can_commit(slot),
                "slot {slot} before safety"
            );
        }
        // branch at 0 resolves safe
        merged.mark_safe(0);
        standalone.clear_safe(0);
        spec_now.clear(0);
        for slot in [1usize, 3, 4] {
            assert_eq!(merged.globally_safe(slot), standalone.can_commit(slot));
        }
        // load at 2 resolves safe
        merged.mark_safe(2);
        standalone.clear_safe(2);
        for slot in [1usize, 3, 4] {
            assert!(merged.globally_safe(slot) && standalone.can_commit(slot));
        }
    }

    #[test]
    #[should_panic(expected = "commit-depend on itself")]
    fn self_dependency_panics() {
        let mut cdm = CommitDepMatrix::new(4);
        cdm.dispatch(1, &BitVec64::from_indices(4, [1]));
    }
}
