//! Matrix schedulers for **ordered issue and unordered commit with
//! non-collapsible queues** — the core data structures of the Orinoco
//! microarchitecture (Chen et al., ISCA 2023).
//!
//! Out-of-order processors traditionally derive the age of an instruction
//! from its *position* in the IQ and ROB, forcing a choice between
//! expensive collapsible queues and pseudo-ordered random queues. This
//! crate decouples temporal order from queue position by tracking it in bit
//! matrices:
//!
//! * [`AgeMatrix`] — relative age with the **bit count encoding**, which
//!   selects up to `IW` oldest ready instructions in O(1) (§3.1), supports
//!   criticality-aware dispatch and locates the oldest instruction for
//!   precise exceptions.
//! * [`CommitDepMatrix`] / [`CommitScheduler`] — commit dependencies for
//!   non-speculative **out-of-order commit**; the merged scheduler reuses
//!   the ROB age matrix with a `SPEC` vector (§3.2).
//! * [`MemDisambigMatrix`] — load/store disambiguation so loads turn
//!   non-speculative before older stores perform (§3.3).
//! * [`LockdownMatrix`] and [`LockdownTable`] — non-speculative load→load
//!   reordering under TSO (§3.3).
//! * [`WakeupMatrix`] — CAM-free IQ wakeup (§3.4).
//! * [`BankAllocator`] — the dispatch-steering constraint of the
//!   multibanked SRAM implementation (§4.3).
//!
//! The physical PIM implementation of these matrices (8T SRAM bit-line
//! computing) is modelled separately in the `orinoco-circuit` crate; here
//! every operation is an exact functional model of what the arrays compute.
//!
//! # Example: ordered issue out of a random queue
//!
//! ```
//! use orinoco_matrix::{AgeMatrix, BitVec64, WakeupMatrix};
//!
//! let mut age = AgeMatrix::new(16);
//! let mut wakeup = WakeupMatrix::new(16);
//!
//! // Three instructions dispatched to arbitrary free entries:
//! //   i0 -> slot 9, i1 (uses i0) -> slot 2, i2 -> slot 13.
//! age.dispatch(9);
//! wakeup.dispatch(9, &BitVec64::new(16));
//! age.dispatch(2);
//! wakeup.dispatch(2, &BitVec64::from_indices(16, [9]));
//! age.dispatch(13);
//! wakeup.dispatch(13, &BitVec64::new(16));
//!
//! // i0 and i2 are ready; a 2-wide issue grants them oldest-first.
//! let bid = wakeup.ready_set();
//! assert_eq!(age.select_oldest(&bid, 2), vec![9, 13]);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod age;
mod bank;
mod bitvec;
mod commit;
mod lockdown;
mod matrix;
mod memdis;
mod wakeup;

pub use age::AgeMatrix;
pub use bank::BankAllocator;
pub use bitvec::{BitVec64, IterOnes, IterOnesAnd, IterOnesRev};
pub use commit::{CommitDepMatrix, CommitScheduler};
pub use lockdown::{LockdownMatrix, LockdownTable};
pub use matrix::BitMatrix;
pub use memdis::MemDisambigMatrix;
pub use wakeup::WakeupMatrix;
