//! A fixed-capacity bit vector backed by `u64` words.
//!
//! [`BitVec64`] is the software analogue of the hardware bit vectors that
//! flow through Orinoco's matrix schedulers (the `VLD`, `BID`, `SPEC` and
//! `CRI` vectors of the paper). All hot operations — bitwise AND combined
//! with a population count, reduction NOR, masked updates — are performed a
//! word at a time so that an `n`-entry vector costs `n/64` machine
//! operations, mirroring the O(1)-per-instruction cost the PIM hardware
//! achieves with bit-line computing.

use std::fmt;

/// A fixed-capacity bit vector.
///
/// The capacity is fixed at construction; bits beyond the capacity are
/// guaranteed to be zero at all times (every mutating operation maintains
/// this invariant), which lets whole-word operations such as
/// [`BitVec64::and_count`] run without masking.
///
/// # Examples
///
/// ```
/// use orinoco_matrix::BitVec64;
///
/// let mut v = BitVec64::new(128);
/// v.set(3);
/// v.set(100);
/// assert_eq!(v.count_ones(), 2);
/// assert!(v.get(100));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec64 {
    words: Vec<u64>,
    len: usize,
}

impl Default for BitVec64 {
    /// An empty (zero-length) bit vector; allocation-free, so
    /// `std::mem::take` can be used to split borrows of scratch buffers.
    fn default() -> Self {
        Self::new(0)
    }
}

impl BitVec64 {
    /// Creates a new bit vector with `len` bits, all zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit vector with `len` bits, all one.
    ///
    /// # Examples
    ///
    /// ```
    /// use orinoco_matrix::BitVec64;
    /// let v = BitVec64::ones(70);
    /// assert_eq!(v.count_ones(), 70);
    /// ```
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut v = Self::new(len);
        v.set_all();
        v
    }

    /// Builds a bit vector of `len` bits with the given indices set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut v = Self::new(len);
        for i in indices {
            v.set(i);
        }
        v
    }

    /// Number of bits in the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to one.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i` to zero.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Writes bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets every bit to one.
    pub fn set_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.mask_tail();
    }

    /// Clears every bit to zero.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `true` if no bit is set (the hardware "reduction NOR" of the paper).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Population count of `self & other` without materialising the AND.
    ///
    /// This is the **bit count encoding** primitive of the paper (§3.1): a
    /// ready instruction ANDs its age-matrix row with the `BID` vector and
    /// counts the ones; a count below the issue width grants issue.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    #[must_use]
    pub fn and_count(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "length mismatch in and_count");
        self.count_ones_and(other)
    }

    /// Word-level popcount of `self & other` (the body of
    /// [`BitVec64::and_count`], exposed under the name the scheduler code
    /// uses): one `AND` + `count_ones` per 64 bits, no intermediate vector.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    #[inline]
    #[must_use]
    pub fn count_ones_and(&self, other: &Self) -> u32 {
        assert_eq!(self.len, other.len, "length mismatch in count_ones_and");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Index of the lowest bit set in **both** `self` and `other`, found by
    /// a `trailing_zeros` scan over the ANDed words — the word-level "first
    /// grant" primitive of the select paths. `None` if the intersection is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    #[inline]
    #[must_use]
    pub fn first_one_and(&self, other: &Self) -> Option<usize> {
        assert_eq!(self.len, other.len, "length mismatch in first_one_and");
        for (wi, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let w = a & b;
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// `true` if `self & other` has no set bit (AND followed by reduction
    /// NOR — the grant test of the classic age matrix and of the commit
    /// dependency check).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    #[must_use]
    pub fn and_is_zero(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "length mismatch in and_is_zero");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch in or_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn and_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch in and_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other` (clears every bit that is set in `other`).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn and_not_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch in and_not_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `self & other` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Returns `!self` (restricted to the capacity) as a new vector.
    #[must_use]
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// Overwrites `self` with the contents of `other` without allocating.
    ///
    /// This is the in-place analogue of `clone()` used by the scratch-buffer
    /// hot paths (the derived `Clone` always allocates a fresh word vector).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch in copy_from");
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates over the indices of the set bits in ascending order.
    ///
    /// # Examples
    ///
    /// ```
    /// use orinoco_matrix::BitVec64;
    /// let v = BitVec64::from_indices(80, [2, 65, 79]);
    /// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![2, 65, 79]);
    /// ```
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes::from_words(&self.words)
    }

    /// Iterates over the indices of the set bits in **descending** order
    /// (a `leading_zeros` scan from the top word down) — used by walks that
    /// want the youngest entries first.
    ///
    /// # Examples
    ///
    /// ```
    /// use orinoco_matrix::BitVec64;
    /// let v = BitVec64::from_indices(80, [2, 65, 79]);
    /// assert_eq!(v.iter_ones_rev().collect::<Vec<_>>(), vec![79, 65, 2]);
    /// ```
    pub fn iter_ones_rev(&self) -> IterOnesRev<'_> {
        IterOnesRev {
            words: &self.words,
            word_idx: self.words.len(),
            current: self.words.last().copied().unwrap_or(0),
        }
    }

    /// Iterates over the indices set in **both** `self` and `other`, in
    /// ascending order, without materialising the AND vector. This is the
    /// allocation-free counterpart of `self.and(other).iter_ones()`.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    ///
    /// # Examples
    ///
    /// ```
    /// use orinoco_matrix::BitVec64;
    /// let a = BitVec64::from_indices(80, [2, 65, 79]);
    /// let b = BitVec64::from_indices(80, [2, 66, 79]);
    /// assert_eq!(a.iter_ones_and(&b).collect::<Vec<_>>(), vec![2, 79]);
    /// ```
    pub fn iter_ones_and<'a>(&'a self, other: &'a Self) -> IterOnesAnd<'a> {
        assert_eq!(self.len, other.len, "length mismatch in iter_ones_and");
        IterOnesAnd {
            a: &self.words,
            b: &other.words,
            word_idx: 0,
            current: match (self.words.first(), other.words.first()) {
                (Some(x), Some(y)) => x & y,
                _ => 0,
            },
        }
    }

    /// Raw word access (read-only), used by [`crate::BitMatrix`] internals.
    #[must_use]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Raw word access (mutable), used by [`crate::BitMatrix`] internals.
    /// Callers must preserve the tail-bits-are-zero invariant.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec64[{}]{{", self.len)?;
        let mut first = true;
        for i in self.iter_ones() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for BitVec64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec64 {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut v = Self::new(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                v.set(i);
            }
        }
        v
    }
}

/// Iterator over set-bit indices of a [`BitVec64`], produced by
/// [`BitVec64::iter_ones`].
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> IterOnes<'a> {
    /// Builds an iterator straight over a word slice, so [`crate::BitMatrix`]
    /// can iterate a row's set bits without copying the row out first.
    pub(crate) fn from_words(words: &'a [u64]) -> Self {
        Self {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// Iterator over set-bit indices of a [`BitVec64`] in descending order,
/// produced by [`BitVec64::iter_ones_rev`].
pub struct IterOnesRev<'a> {
    words: &'a [u64],
    /// One past the index of the word `current` was loaded from
    /// (0 = exhausted).
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnesRev<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = 63 - self.current.leading_zeros() as usize;
                self.current ^= 1u64 << bit;
                return Some((self.word_idx - 1) * 64 + bit);
            }
            if self.word_idx <= 1 {
                return None;
            }
            self.word_idx -= 1;
            self.current = self.words[self.word_idx - 1];
        }
    }
}

/// Iterator over the intersection of two [`BitVec64`]s, produced by
/// [`BitVec64::iter_ones_and`]. ANDs one word pair at a time, so no
/// intermediate vector is ever allocated.
pub struct IterOnesAnd<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnesAnd<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.a.len() {
                return None;
            }
            self.current = self.a[self.word_idx] & self.b[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let v = BitVec64::new(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        assert_eq!(v.count_ones(), 0);
        for i in 0..130 {
            assert!(!v.get(i));
        }
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec64::new(100);
        for i in [0, 1, 63, 64, 65, 99] {
            v.set(i);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 6);
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 5);
    }

    #[test]
    fn assign_matches_set_clear() {
        let mut v = BitVec64::new(10);
        v.assign(3, true);
        assert!(v.get(3));
        v.assign(3, false);
        assert!(!v.get(3));
    }

    #[test]
    fn ones_respects_capacity() {
        let v = BitVec64::ones(70);
        assert_eq!(v.count_ones(), 70);
        // tail bits beyond capacity stay clear: not() must also mask
        let n = v.not();
        assert!(n.is_zero());
    }

    #[test]
    fn set_all_then_not_is_zero() {
        let mut v = BitVec64::new(64);
        v.set_all();
        assert_eq!(v.count_ones(), 64);
        assert!(v.not().is_zero());
    }

    #[test]
    fn and_count_counts_intersection() {
        let a = BitVec64::from_indices(128, [1, 2, 3, 70, 100]);
        let b = BitVec64::from_indices(128, [2, 3, 100, 127]);
        assert_eq!(a.and_count(&b), 3);
        assert!(!a.and_is_zero(&b));
        let c = BitVec64::from_indices(128, [0, 127]);
        assert_eq!(a.and_count(&c), 0);
        assert!(a.and_is_zero(&c));
    }

    #[test]
    fn logical_ops() {
        let mut a = BitVec64::from_indices(65, [0, 64]);
        let b = BitVec64::from_indices(65, [0, 1]);
        a.or_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 1, 64]);
        a.and_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        a.and_not_assign(&BitVec64::from_indices(65, [1]));
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn and_returns_new() {
        let a = BitVec64::from_indices(10, [1, 2]);
        let b = BitVec64::from_indices(10, [2, 3]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![2]);
        // originals untouched
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn iter_ones_empty_and_full() {
        assert_eq!(BitVec64::new(100).iter_ones().count(), 0);
        assert_eq!(BitVec64::ones(100).iter_ones().count(), 100);
        assert_eq!(BitVec64::new(0).iter_ones().count(), 0);
    }

    #[test]
    fn iter_ones_rev_descends() {
        let v = BitVec64::from_indices(130, [0, 63, 64, 127, 129]);
        assert_eq!(v.iter_ones_rev().collect::<Vec<_>>(), vec![129, 127, 64, 63, 0]);
        assert_eq!(BitVec64::new(100).iter_ones_rev().count(), 0);
        assert_eq!(BitVec64::new(0).iter_ones_rev().count(), 0);
        assert_eq!(BitVec64::ones(70).iter_ones_rev().count(), 70);
    }

    #[test]
    fn first_one_and_finds_lowest_intersection() {
        let a = BitVec64::from_indices(128, [5, 70, 100]);
        let b = BitVec64::from_indices(128, [6, 70, 100]);
        assert_eq!(a.first_one_and(&b), Some(70));
        assert_eq!(a.first_one_and(&BitVec64::new(128)), None);
        assert_eq!(a.first_one_and(&a), Some(5));
    }

    #[test]
    fn count_ones_and_matches_and_count() {
        let a = BitVec64::from_indices(128, [1, 2, 3, 70, 100]);
        let b = BitVec64::from_indices(128, [2, 3, 100, 127]);
        assert_eq!(a.count_ones_and(&b), a.and_count(&b));
        assert_eq!(a.count_ones_and(&b), 3);
    }

    #[test]
    fn from_iterator_of_bools() {
        let v: BitVec64 = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let v = BitVec64::from_indices(4, [1]);
        assert_eq!(format!("{v}"), "0100");
        assert_eq!(format!("{v:?}"), "BitVec64[4]{1}");
        let e = BitVec64::new(0);
        assert!(!format!("{e:?}").is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_set_panics() {
        BitVec64::new(8).set(8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_and_count_panics() {
        let _ = BitVec64::new(8).and_count(&BitVec64::new(9));
    }
}
