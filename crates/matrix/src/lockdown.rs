//! The lockdown matrix and lockdown table (§3.3, Figure 7): non-speculative
//! load→load reordering under Total Store Order with a non-collapsible LQ.
//!
//! When a load commits out of order over older *non-performed* loads, its
//! cache line must be "locked down": invalidations and evictions to its
//! address are withheld until every older load has performed, so no other
//! core can ever observe the reordering. The [`LockdownMatrix`] tracks each
//! committed load (row, an entry of the Lockdown Table) against the older
//! in-flight loads it passed (columns, LQ entries); a performed load clears
//! its column; a row that reduction-NORs to zero releases its lockdown.
//!
//! [`LockdownTable`] adds the per-address reference counting the paper
//! requires ("multiple lockdowns are allowed for the same address, the
//! acknowledgement ... is returned only when all the lockdowns for that
//! address are released").

use crate::{BitMatrix, BitVec64};
use std::collections::HashMap;

/// Lockdown matrix: rows are Lockdown Table entries (committed loads),
/// columns are LQ entries (in-flight loads).
///
/// # Examples
///
/// ```
/// use orinoco_matrix::{BitVec64, LockdownMatrix};
///
/// let mut ldm = LockdownMatrix::new(4, 8);
/// // A load commits over older non-performed loads in LQ slots 1 and 5.
/// ldm.commit_load(0, &BitVec64::from_indices(8, [1, 5]));
/// assert!(!ldm.ordered(0));
/// ldm.load_performed(1);
/// ldm.load_performed(5);
/// assert!(ldm.ordered(0)); // lockdown can be lifted
/// ```
#[derive(Clone, Debug)]
pub struct LockdownMatrix {
    m: BitMatrix,
}

impl LockdownMatrix {
    /// Creates a lockdown matrix with `ldt` table entries and `lq` LQ
    /// columns.
    #[must_use]
    pub fn new(ldt: usize, lq: usize) -> Self {
        Self { m: BitMatrix::new(ldt, lq) }
    }

    /// Lockdown table capacity (rows).
    #[must_use]
    pub fn ldt_capacity(&self) -> usize {
        self.m.rows()
    }

    /// Load queue capacity (columns).
    #[must_use]
    pub fn lq_capacity(&self) -> usize {
        self.m.cols()
    }

    /// A speculative load commits out of order: record the older
    /// non-performed loads it passed.
    ///
    /// # Panics
    ///
    /// Panics if `ldt_slot` is out of bounds or the vector length is not
    /// the LQ capacity.
    pub fn commit_load(&mut self, ldt_slot: usize, older_nonperformed: &BitVec64) {
        self.m.write_row(ldt_slot, older_nonperformed);
    }

    /// The load in LQ entry `lq_slot` performed (data arrived in the
    /// cache): clear its column so lockdowns waiting on it make progress.
    ///
    /// # Panics
    ///
    /// Panics if `lq_slot` is out of bounds.
    pub fn load_performed(&mut self, lq_slot: usize) {
        self.m.clear_col(lq_slot);
    }

    /// [`LockdownMatrix::load_performed`] restricted to the LDT rows set in
    /// `row_mask` (bit `r` = row `r` holds a live lockdown). Rows outside
    /// the mask may keep stale bits: a dead row is unobservable until its
    /// next [`LockdownMatrix::commit_load`], whose row write overwrites it
    /// in full. With the mask usually empty or near-empty this replaces the
    /// all-rows column clear by a couple of bit clears.
    ///
    /// # Panics
    ///
    /// Panics if `lq_slot` is out of bounds or the matrix has more than 64
    /// LDT rows.
    pub fn load_performed_masked(&mut self, lq_slot: usize, row_mask: u64) {
        let mut m = row_mask & self.row_mask_all();
        while m != 0 {
            let row = m.trailing_zeros() as usize;
            m &= m - 1;
            self.m.clear(row, lq_slot);
        }
    }

    /// The subset of `row_mask` rows still pinned by the load in LQ entry
    /// `lq_slot` — the word-level form of probing
    /// [`LockdownMatrix::blocks`] row by row.
    ///
    /// # Panics
    ///
    /// Panics if `lq_slot` is out of bounds or the matrix has more than 64
    /// LDT rows.
    #[must_use]
    pub fn blocking_rows(&self, lq_slot: usize, row_mask: u64) -> u64 {
        let mut out = 0u64;
        let mut m = row_mask & self.row_mask_all();
        while m != 0 {
            let row = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.m.get(row, lq_slot) {
                out |= 1u64 << row;
            }
        }
        out
    }

    /// `true` if the lockdown in `ldt_slot` is still pinned by the load
    /// in LQ entry `lq_slot`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[must_use]
    pub fn blocks(&self, ldt_slot: usize, lq_slot: usize) -> bool {
        self.m.get(ldt_slot, lq_slot)
    }

    /// Re-pins the lockdown in `ldt_slot` on the load in LQ entry
    /// `lq_slot` — a replayed (squashed but architecturally live) blocking
    /// load re-entering the LQ must keep blocking until it re-performs.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn reblock(&mut self, ldt_slot: usize, lq_slot: usize) {
        self.m.set(ldt_slot, lq_slot);
    }

    /// `true` if every older load the committed load passed has performed:
    /// the load is globally *ordered* and its lockdown is lifted.
    ///
    /// # Panics
    ///
    /// Panics if `ldt_slot` is out of bounds.
    #[must_use]
    pub fn ordered(&self, ldt_slot: usize) -> bool {
        self.m.row_is_zero(ldt_slot)
    }

    /// Number of older non-performed loads still pinning this lockdown.
    ///
    /// # Panics
    ///
    /// Panics if `ldt_slot` is out of bounds.
    #[must_use]
    pub fn pending(&self, ldt_slot: usize) -> u32 {
        self.m.row_count(ldt_slot)
    }

    /// Observability: every `(ldt_slot, pending)` pair with a non-zero
    /// pending count — the lockdowns still waiting on older loads. Used
    /// by the verification harness to watch the matrix state evolve.
    #[must_use]
    pub fn pending_rows(&self) -> Vec<(usize, u32)> {
        (0..self.m.rows())
            .filter_map(|r| {
                let c = self.m.row_count(r);
                (c > 0).then_some((r, c))
            })
            .collect()
    }

    /// Observability: the LQ slots a lockdown row is still waiting on.
    ///
    /// # Panics
    ///
    /// Panics if `ldt_slot` is out of bounds.
    #[must_use]
    pub fn waiting_on(&self, ldt_slot: usize) -> Vec<usize> {
        self.m.read_row(ldt_slot).iter_ones().collect()
    }

    /// Clears every row in place (core reset path; keeps the allocation).
    pub fn clear(&mut self) {
        self.m.clear_all();
    }

    /// Mask of all existing LDT rows; mask bits past the capacity are
    /// ignored by the masked scans.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more than 64 LDT rows.
    fn row_mask_all(&self) -> u64 {
        let rows = self.m.rows();
        assert!(rows <= 64, "masked scan requires at most 64 LDT rows");
        if rows == 64 { u64::MAX } else { (1u64 << rows) - 1 }
    }
}

/// Lockdown table: per-address reference counts of active lockdowns, with
/// withheld coherence acknowledgements.
///
/// Addresses are cache-line granular (the caller passes line addresses).
#[derive(Clone, Debug, Default)]
pub struct LockdownTable {
    locks: HashMap<u64, u32>,
    withheld: HashMap<u64, u32>,
}

impl LockdownTable {
    /// Creates an empty lockdown table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires a lockdown on `line`.
    pub fn acquire(&mut self, line: u64) {
        *self.locks.entry(line).or_insert(0) += 1;
    }

    /// Releases one lockdown on `line`; returns the number of withheld
    /// invalidation/eviction acknowledgements that may now be sent (zero if
    /// other lockdowns on the line remain).
    ///
    /// # Panics
    ///
    /// Panics if the line has no active lockdown.
    pub fn release(&mut self, line: u64) -> u32 {
        let count = self
            .locks
            .get_mut(&line)
            .unwrap_or_else(|| panic!("release of unlocked line {line:#x}"));
        *count -= 1;
        if *count == 0 {
            self.locks.remove(&line);
            self.withheld.remove(&line).unwrap_or(0)
        } else {
            0
        }
    }

    /// An incoming invalidation or eviction for `line`: returns `true` if
    /// it can be acknowledged immediately, `false` if the ack is withheld
    /// until the lockdowns release.
    pub fn incoming_invalidation(&mut self, line: u64) -> bool {
        if self.locks.contains_key(&line) {
            *self.withheld.entry(line).or_insert(0) += 1;
            false
        } else {
            true
        }
    }

    /// `true` if `line` is currently locked down.
    #[must_use]
    pub fn is_locked(&self, line: u64) -> bool {
        self.locks.contains_key(&line)
    }

    /// Number of active lockdowns across all lines.
    #[must_use]
    pub fn active(&self) -> usize {
        self.locks.values().map(|&c| c as usize).sum()
    }

    /// Observability: the currently locked-down line addresses, sorted
    /// (deterministic for test assertions and trace output).
    #[must_use]
    pub fn locked_lines(&self) -> Vec<u64> {
        let mut lines: Vec<u64> = self.locks.keys().copied().collect();
        lines.sort_unstable();
        lines
    }

    /// Observability: acknowledgements currently withheld for `line`.
    #[must_use]
    pub fn withheld_count(&self, line: u64) -> u32 {
        self.withheld.get(&line).copied().unwrap_or(0)
    }

    /// Drops every lockdown and withheld ack in place (core reset path;
    /// keeps the map capacity).
    pub fn clear(&mut self) {
        self.locks.clear();
        self.withheld.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockdown_lifts_when_older_loads_perform() {
        let mut ldm = LockdownMatrix::new(4, 8);
        ldm.commit_load(2, &BitVec64::from_indices(8, [0, 3]));
        assert_eq!(ldm.pending(2), 2);
        ldm.load_performed(0);
        assert!(!ldm.ordered(2));
        ldm.load_performed(3);
        assert!(ldm.ordered(2));
    }

    #[test]
    fn lockdown_with_no_older_loads_is_immediately_ordered() {
        let mut ldm = LockdownMatrix::new(2, 4);
        ldm.commit_load(0, &BitVec64::new(4));
        assert!(ldm.ordered(0));
    }

    #[test]
    fn performing_one_load_releases_all_rows_waiting_on_it() {
        let mut ldm = LockdownMatrix::new(4, 4);
        ldm.commit_load(0, &BitVec64::from_indices(4, [1]));
        ldm.commit_load(3, &BitVec64::from_indices(4, [1]));
        ldm.load_performed(1);
        assert!(ldm.ordered(0));
        assert!(ldm.ordered(3));
    }

    #[test]
    fn masked_perform_clears_only_live_rows() {
        let mut ldm = LockdownMatrix::new(4, 8);
        ldm.commit_load(0, &BitVec64::from_indices(8, [2]));
        ldm.commit_load(2, &BitVec64::from_indices(8, [2, 5]));
        // Row 0 is "dead" (outside the mask): its stale bit survives.
        ldm.load_performed_masked(2, 0b100);
        assert!(ldm.blocks(0, 2));
        assert!(!ldm.blocks(2, 2));
        assert!(ldm.blocks(2, 5));
        // The next commit_load into the dead row scrubs the stale bit.
        ldm.commit_load(0, &BitVec64::new(8));
        assert!(ldm.ordered(0));
    }

    #[test]
    fn blocking_rows_reports_masked_pinners() {
        let mut ldm = LockdownMatrix::new(8, 8);
        ldm.commit_load(1, &BitVec64::from_indices(8, [3]));
        ldm.commit_load(4, &BitVec64::from_indices(8, [3, 6]));
        ldm.commit_load(6, &BitVec64::from_indices(8, [6]));
        assert_eq!(ldm.blocking_rows(3, u64::MAX), 0b1_0010);
        assert_eq!(ldm.blocking_rows(3, 0b1_0000), 0b1_0000);
        assert_eq!(ldm.blocking_rows(6, u64::MAX), 0b101_0000);
        assert_eq!(ldm.blocking_rows(0, u64::MAX), 0);
    }

    #[test]
    fn table_refcounts_per_line() {
        let mut ldt = LockdownTable::new();
        ldt.acquire(0x40);
        ldt.acquire(0x40);
        ldt.acquire(0x80);
        assert_eq!(ldt.active(), 3);
        assert!(ldt.is_locked(0x40));
        assert_eq!(ldt.release(0x40), 0);
        assert!(ldt.is_locked(0x40)); // one lockdown remains
        assert_eq!(ldt.release(0x40), 0);
        assert!(!ldt.is_locked(0x40));
    }

    #[test]
    fn invalidation_ack_withheld_until_all_lockdowns_release() {
        let mut ldt = LockdownTable::new();
        ldt.acquire(0x100);
        ldt.acquire(0x100);
        assert!(!ldt.incoming_invalidation(0x100)); // withheld
        assert!(!ldt.incoming_invalidation(0x100)); // withheld again
        assert_eq!(ldt.release(0x100), 0);
        // Final release returns the two pending acks.
        assert_eq!(ldt.release(0x100), 2);
        // Subsequent invalidations ack immediately.
        assert!(ldt.incoming_invalidation(0x100));
    }

    #[test]
    fn unlocked_line_acks_immediately() {
        let mut ldt = LockdownTable::new();
        assert!(ldt.incoming_invalidation(0x0));
    }

    #[test]
    #[should_panic(expected = "release of unlocked line")]
    fn release_unlocked_panics() {
        LockdownTable::new().release(0x40);
    }
}
