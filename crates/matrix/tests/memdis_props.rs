//! Property tests for the memory disambiguation matrix against a naive
//! O(LQ×SQ) boolean-matrix reference: random interleavings of load
//! issues, store resolutions (with arbitrary conflict masks), squashes
//! and slot recycling must leave every observable — per-load
//! non-speculative state, pending-store counts, per-store waiting sets —
//! identical to the reference at every step.

use orinoco_matrix::{BitVec64, MemDisambigMatrix};
use orinoco_util::prop;

const LQ: usize = 24;
const SQ: usize = 12;

/// The naive reference: an explicit LQ×SQ boolean matrix updated by
/// scanning whole rows/columns.
struct Naive {
    bits: Vec<Vec<bool>>,
}

impl Naive {
    fn new() -> Self {
        Self { bits: vec![vec![false; SQ]; LQ] }
    }
    fn load_issue(&mut self, l: usize, stores: &[bool; SQ]) {
        self.bits[l].copy_from_slice(stores);
    }
    fn store_resolved(&mut self, s: usize, no_conflict: &[bool; LQ]) {
        for (row, &clear) in self.bits.iter_mut().zip(no_conflict) {
            if clear {
                row[s] = false;
            }
        }
    }
    fn store_cleared(&mut self, s: usize) {
        for row in &mut self.bits {
            row[s] = false;
        }
    }
    fn load_cleared(&mut self, l: usize) {
        self.bits[l] = vec![false; SQ];
    }
    fn load_nonspeculative(&self, l: usize) -> bool {
        self.bits[l].iter().all(|&b| !b)
    }
    fn pending_stores(&self, l: usize) -> u32 {
        self.bits[l].iter().filter(|&&b| b).count() as u32
    }
    fn loads_waiting_on(&self, s: usize) -> Vec<usize> {
        (0..LQ).filter(|&l| self.bits[l][s]).collect()
    }
}

fn check_equal(mdm: &MemDisambigMatrix, naive: &Naive) {
    for l in 0..LQ {
        assert_eq!(mdm.load_nonspeculative(l), naive.load_nonspeculative(l), "load {l}");
        assert_eq!(mdm.pending_stores(l), naive.pending_stores(l), "load {l} pending");
    }
    for s in 0..SQ {
        assert_eq!(
            mdm.loads_waiting_on(s).iter_ones().collect::<Vec<_>>(),
            naive.loads_waiting_on(s),
            "store {s} waiters"
        );
    }
}

/// Any interleaving of the four mutators leaves the matrix equal to the
/// naive reference on every observable.
#[test]
fn memdis_matches_naive_reference_under_random_walks() {
    prop::check("memdis_naive_walk", 0x3D15, |rng| {
        let mut mdm = MemDisambigMatrix::new(LQ, SQ);
        let mut naive = Naive::new();
        let steps = rng.gen_range(1..120usize);
        for _ in 0..steps {
            match rng.gen_range(0..4u8) {
                0 => {
                    // A load issues past a random unresolved-store set
                    // (re-issue over a dirty row included).
                    let l = rng.gen_range(0..LQ);
                    let mut stores = [false; SQ];
                    for b in &mut stores {
                        *b = rng.gen::<bool>();
                    }
                    mdm.load_issue(
                        l,
                        &BitVec64::from_indices(SQ, (0..SQ).filter(|&s| stores[s])),
                    );
                    naive.load_issue(l, &stores);
                }
                1 => {
                    // A store resolves with an arbitrary no-conflict mask.
                    let s = rng.gen_range(0..SQ);
                    let mut ok = [false; LQ];
                    for b in &mut ok {
                        *b = rng.gen::<bool>();
                    }
                    mdm.store_resolved(
                        s,
                        &BitVec64::from_indices(LQ, (0..LQ).filter(|&l| ok[l])),
                    );
                    naive.store_resolved(s, &ok);
                }
                2 => {
                    let s = rng.gen_range(0..SQ);
                    mdm.store_cleared(s);
                    naive.store_cleared(s);
                }
                _ => {
                    let l = rng.gen_range(0..LQ);
                    mdm.load_cleared(l);
                    naive.load_cleared(l);
                }
            }
            check_equal(&mdm, &naive);
        }
    });
}

/// Release monotonicity: once a load goes non-speculative it stays that
/// way under store resolutions and clears — only a fresh `load_issue`
/// (slot recycling / replay re-issue) can make it speculative again.
#[test]
fn nonspeculative_is_stable_until_reissue() {
    prop::check("memdis_monotone", 0x3D16, |rng| {
        let mut mdm = MemDisambigMatrix::new(LQ, SQ);
        // Issue one tracked load with a known pending set.
        let l = rng.gen_range(0..LQ);
        let mask: u16 = rng.gen::<u16>() & ((1 << SQ) - 1);
        mdm.load_issue(l, &BitVec64::from_indices(SQ, (0..SQ).filter(|&s| mask >> s & 1 == 1)));
        let mut pending = mask;
        let all_loads = BitVec64::ones(LQ);
        while pending != 0 {
            assert!(!mdm.load_nonspeculative(l));
            let s = rng.gen_range(0..SQ);
            if rng.gen::<bool>() {
                mdm.store_resolved(s, &all_loads);
            } else {
                mdm.store_cleared(s);
            }
            pending &= !(1 << s);
        }
        assert!(mdm.load_nonspeculative(l));
        // No further store activity can regress it.
        for _ in 0..SQ {
            let s = rng.gen_range(0..SQ);
            mdm.store_resolved(s, &BitVec64::new(LQ)); // conflict mask for everyone else
            mdm.store_cleared(s);
            assert!(mdm.load_nonspeculative(l));
        }
    });
}
