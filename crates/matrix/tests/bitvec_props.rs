//! Word-boundary property tests for the [`BitVec64`] kernels the paper's
//! circuits depend on: the bit-count primitive (`and_count`, §3.1) and
//! the reduction-NOR zero-detect (`and_is_zero`/`is_zero`, §4) must equal
//! naive `Vec<bool>` references exactly at and around the 64-bit word
//! boundary (63/64/65 bits), where tail-masking bugs live.

use orinoco_matrix::BitVec64;
use orinoco_util::{prop, Rng};

/// Sizes straddling the word boundary, plus the two-word boundary.
const SIZES: [usize; 8] = [1, 7, 63, 64, 65, 127, 128, 129];

/// Random `BitVec64` plus its boolean-vector mirror.
fn random_vec(rng: &mut Rng, n: usize) -> (BitVec64, Vec<bool>) {
    let bits: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
    let bv = BitVec64::from_indices(n, (0..n).filter(|&i| bits[i]));
    (bv, bits)
}

/// `and_count` (popcount of the AND — the bit-count encoding primitive)
/// equals the naive element-wise reference at every boundary size.
#[test]
fn and_count_matches_reference_at_word_boundaries() {
    prop::check("and_count_boundaries", 0xB17C0, |rng| {
        for n in SIZES {
            let (a, ab) = random_vec(rng, n);
            let (b, bb) = random_vec(rng, n);
            let want = (0..n).filter(|&i| ab[i] && bb[i]).count() as u32;
            assert_eq!(a.and_count(&b), want, "n={n}");
            // popcount of self agrees too
            assert_eq!(a.count_ones(), ab.iter().filter(|&&x| x).count() as u32);
        }
    });
}

/// Reduction-NOR zero-detect: `and_is_zero` and `is_zero` equal the naive
/// references, including with bits set exactly at positions 62/63/64.
#[test]
fn reduction_nor_matches_reference_at_word_boundaries() {
    prop::check("reduction_nor_boundaries", 0xB17C1, |rng| {
        for n in SIZES {
            let (a, ab) = random_vec(rng, n);
            let (b, bb) = random_vec(rng, n);
            let want_and_zero = !(0..n).any(|i| ab[i] && bb[i]);
            assert_eq!(a.and_is_zero(&b), want_and_zero, "n={n}");
            assert_eq!(a.is_zero(), ab.iter().all(|&x| !x), "n={n}");
        }
    });
}

/// A single bit walked across the boundary positions is always seen by
/// both the count and the NOR, and never leaks into the masked tail.
#[test]
fn single_bit_walk_across_boundary() {
    for n in [63usize, 64, 65, 128, 129] {
        for i in 0..n {
            let mut v = BitVec64::new(n);
            v.set(i);
            assert_eq!(v.count_ones(), 1, "n={n} i={i}");
            assert!(!v.is_zero(), "n={n} i={i}");
            let ones = BitVec64::ones(n);
            assert_eq!(v.and_count(&ones), 1, "n={n} i={i}");
            assert!(!v.and_is_zero(&ones), "n={n} i={i}");
            // Complement holds everything except bit i.
            let inv = v.not();
            assert_eq!(inv.count_ones() as usize, n - 1, "n={n} i={i}");
            assert!(v.and_is_zero(&inv), "n={n} i={i}");
            v.clear(i);
            assert!(v.is_zero(), "n={n} i={i}");
        }
    }
}

/// The masked tail of the last word never contributes to counts even
/// after operations that set whole words (`ones`, `not`, `or_assign`).
#[test]
fn tail_bits_never_leak() {
    for n in [63usize, 64, 65, 127, 129] {
        let ones = BitVec64::ones(n);
        assert_eq!(ones.count_ones() as usize, n);
        let zero = BitVec64::new(n);
        let inverted = zero.not();
        assert_eq!(inverted.count_ones() as usize, n, "n={n}");
        assert_eq!(inverted.and_count(&ones) as usize, n, "n={n}");
        let mut acc = BitVec64::new(n);
        acc.or_assign(&inverted);
        assert_eq!(acc.count_ones() as usize, n, "n={n}");
        assert_eq!(acc.iter_ones().count(), n, "n={n}");
    }
}

/// The fused-AND helpers (`count_ones_and`, `first_one_and`,
/// `iter_ones_and`) equal per-bit naive loops at every boundary size.
#[test]
fn fused_and_helpers_match_naive_loops() {
    prop::check("fused_and_helpers", 0xB17C2, |rng| {
        for n in SIZES {
            let (a, ab) = random_vec(rng, n);
            let (b, bb) = random_vec(rng, n);
            let both: Vec<usize> = (0..n).filter(|&i| ab[i] && bb[i]).collect();
            assert_eq!(a.count_ones_and(&b) as usize, both.len(), "n={n}");
            assert_eq!(a.first_one_and(&b), both.first().copied(), "n={n}");
            assert_eq!(a.iter_ones_and(&b).collect::<Vec<_>>(), both, "n={n}");
        }
    });
}

/// `iter_ones_rev` yields exactly the set bits of `iter_ones`, in
/// strictly reversed order, at every boundary size.
#[test]
fn reverse_iteration_mirrors_forward() {
    prop::check("iter_ones_rev", 0xB17C3, |rng| {
        for n in SIZES {
            let (v, bits) = random_vec(rng, n);
            let fwd: Vec<usize> = (0..n).filter(|&i| bits[i]).collect();
            let mut rev: Vec<usize> = v.iter_ones_rev().collect();
            rev.reverse();
            assert_eq!(rev, fwd, "n={n}");
            assert_eq!(v.iter_ones().collect::<Vec<_>>(), fwd, "n={n}");
        }
    });
}
