//! Property-based tests: every matrix scheduler is checked against a naive
//! oracle that tracks instructions with explicit sequence numbers (the
//! "timestamps" the paper argues hardware cannot afford — software can).
//!
//! Runs on the in-workspace [`orinoco_util::prop`] harness: each property
//! executes 256 deterministic cases and prints a replay seed on failure.

use orinoco_matrix::{
    AgeMatrix, BankAllocator, BitMatrix, BitVec64, CommitDepMatrix, CommitScheduler,
    WakeupMatrix,
};
use orinoco_util::{prop, Rng};

const N: usize = 48;

/// Oracle: slot -> sequence number of the instruction occupying it.
#[derive(Default, Clone)]
struct Oracle {
    seq: Vec<Option<u64>>,
    next: u64,
}

impl Oracle {
    fn new(n: usize) -> Self {
        Self { seq: vec![None; n], next: 0 }
    }
    fn dispatch(&mut self, slot: usize) {
        assert!(self.seq[slot].is_none());
        self.seq[slot] = Some(self.next);
        self.next += 1;
    }
    fn free(&mut self, slot: usize) {
        assert!(self.seq[slot].is_some());
        self.seq[slot] = None;
    }
    /// The `width` oldest among `request`, oldest first.
    fn oldest(&self, request: &[usize], width: usize) -> Vec<usize> {
        let mut v: Vec<(u64, usize)> = request
            .iter()
            .filter_map(|&s| self.seq[s].map(|q| (q, s)))
            .collect();
        v.sort_unstable();
        v.truncate(width);
        v.into_iter().map(|(_, s)| s).collect()
    }
}

/// A random interleaving of dispatches and frees that keeps occupancy legal.
fn random_ops(rng: &mut Rng) -> Vec<(bool, usize)> {
    let len = rng.gen_range(1..200usize);
    (0..len).map(|_| (rng.gen::<bool>(), rng.gen_range(0..N))).collect()
}

fn apply_ops(ops: &[(bool, usize)]) -> (AgeMatrix, Oracle) {
    let mut age = AgeMatrix::new(N);
    let mut oracle = Oracle::new(N);
    for &(dispatch, slot) in ops {
        if dispatch {
            if !age.is_valid(slot) {
                age.dispatch(slot);
                oracle.dispatch(slot);
            }
        } else if age.is_valid(slot) {
            age.free(slot);
            oracle.free(slot);
        }
    }
    (age, oracle)
}

/// Random request set over `0..N` as (sorted dedup'd slots, bit vector).
fn random_request(rng: &mut Rng) -> (Vec<usize>, BitVec64) {
    let len = rng.gen_range(0..N);
    let mut req_slots: Vec<usize> = (0..len).map(|_| rng.gen_range(0..N)).collect();
    req_slots.sort_unstable();
    req_slots.dedup();
    let req = BitVec64::from_indices(N, req_slots.iter().copied());
    (req_slots, req)
}

/// The bit count encoding grants exactly the `width` oldest requesting
/// valid entries, in age order, for any allocation history and any
/// request set.
#[test]
fn select_oldest_matches_oracle() {
    prop::check("select_oldest_matches_oracle", 0xA9E1, |rng| {
        let (age, oracle) = apply_ops(&random_ops(rng));
        let (req_slots, req) = random_request(rng);
        let width = rng.gen_range(0..10usize);
        let got = age.select_oldest(&req, width);
        let want = oracle.oldest(&req_slots, width);
        assert_eq!(got, want);
    });
}

/// `select_oldest` equals a *naive O(n²)* reference computed purely from
/// pairwise `is_older` comparisons — no sequence numbers involved — for
/// random dispatch/free/mask sequences. (Checks the bit-count encoding
/// against the matrix's own transitive order, independently of the
/// timestamp oracle above.)
#[test]
fn select_oldest_matches_naive_pairwise_reference() {
    prop::check("select_oldest_naive_reference", 0xA9E2, |rng| {
        let (age, _) = apply_ops(&random_ops(rng));
        let (req_slots, req) = random_request(rng);
        let width = rng.gen_range(0..10usize);
        // Naive O(n²): a requesting valid entry is granted iff fewer than
        // `width` requesting valid entries are older than it; grants are
        // ordered by their count of older requesters.
        let live: Vec<usize> =
            req_slots.iter().copied().filter(|&s| age.is_valid(s)).collect();
        let mut ranked: Vec<(usize, usize)> = live
            .iter()
            .map(|&s| {
                let older = live.iter().filter(|&&o| o != s && age.is_older(o, s)).count();
                (older, s)
            })
            .filter(|&(older, _)| older < width)
            .collect();
        ranked.sort_unstable();
        let want: Vec<usize> = ranked.into_iter().map(|(_, s)| s).collect();
        assert_eq!(age.select_oldest(&req, width), want);
    });
}

/// Classic single-oldest AGE equals the head of the bit-count grant.
#[test]
fn single_oldest_is_first_grant() {
    prop::check("single_oldest_is_first_grant", 0xA9E3, |rng| {
        let (age, _) = apply_ops(&random_ops(rng));
        let (_, req) = random_request(rng);
        let single = age.select_single_oldest(&req);
        let multi = age.select_oldest(&req, 1);
        assert_eq!(single, multi.first().copied());
    });
}

/// `oldest_valid` always returns the entry with the smallest sequence
/// number.
#[test]
fn oldest_valid_matches_oracle() {
    prop::check("oldest_valid_matches_oracle", 0xA9E4, |rng| {
        let (age, oracle) = apply_ops(&random_ops(rng));
        let all: Vec<usize> = (0..N).collect();
        let want = oracle.oldest(&all, 1).first().copied();
        assert_eq!(age.oldest_valid(), want);
    });
}

/// `younger_than(s)` is exactly the valid entries with larger sequence
/// numbers.
#[test]
fn younger_than_matches_oracle() {
    prop::check("younger_than_matches_oracle", 0xA9E5, |rng| {
        let (age, oracle) = apply_ops(&random_ops(rng));
        for s in 0..N {
            if !age.is_valid(s) {
                continue;
            }
            let sq = oracle.seq[s].unwrap();
            let want: Vec<usize> = (0..N)
                .filter(|&t| oracle.seq[t].is_some_and(|q| q > sq))
                .collect();
            let got: Vec<usize> = age.younger_than(s).iter_ones().collect();
            assert_eq!(got, want);
        }
    });
}

/// `is_older` agrees with sequence numbers for every live pair.
#[test]
fn pairwise_order_matches_oracle() {
    prop::check("pairwise_order_matches_oracle", 0xA9E6, |rng| {
        let (age, oracle) = apply_ops(&random_ops(rng));
        let live: Vec<usize> = (0..N).filter(|&s| age.is_valid(s)).collect();
        for &a in &live {
            for &b in &live {
                if a == b {
                    continue;
                }
                let want = oracle.seq[a].unwrap() < oracle.seq[b].unwrap();
                assert_eq!(age.is_older(a, b), want, "a={a} b={b}");
            }
        }
    });
}

/// Merged commit scheduler (age matrix + SPEC vector) is equivalent to
/// the standalone commit dependency matrix for any dispatch order and
/// any safety-resolution order.
#[test]
fn merged_commit_equals_standalone() {
    prop::check("merged_commit_equals_standalone", 0xA9E7, |rng| {
        let n = 32;
        let live = rng.gen_range(1..n);
        let spec_flags: Vec<bool> = (0..live).map(|_| rng.gen::<bool>()).collect();
        let resolves = rng.gen_range(0..64usize);
        let mut merged = CommitScheduler::new(n);
        let mut standalone = CommitDepMatrix::new(n);
        let mut spec_now = BitVec64::new(n);
        for (slot, &speculative) in spec_flags.iter().enumerate() {
            standalone.dispatch(slot, &spec_now);
            merged.dispatch(slot, speculative);
            if speculative {
                spec_now.set(slot);
            }
        }
        for _ in 0..resolves {
            let r = rng.gen_range(0..n);
            if r < live && merged.is_speculative(r) {
                merged.mark_safe(r);
                standalone.clear_safe(r);
            }
            for slot in 0..live {
                assert_eq!(
                    merged.globally_safe(slot),
                    standalone.can_commit(slot),
                    "slot {slot}"
                );
            }
        }
    });
}

/// Out-of-order commit grants: (a) only completed, valid, globally safe
/// and locally safe entries; (b) exactly the CW oldest such entries;
/// (c) never an entry with an older live speculative instruction.
#[test]
fn commit_grants_sound_and_maximal() {
    prop::check("commit_grants_sound_and_maximal", 0xA9E8, |rng| {
        let n = 32;
        let live = rng.gen_range(1..n);
        let spec_flags: Vec<bool> = (0..live).map(|_| rng.gen::<bool>()).collect();
        let completed: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
        let safe_subset: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
        let width = rng.gen_range(1..8usize);
        let mut rob = CommitScheduler::new(n);
        for (slot, &sp) in spec_flags.iter().enumerate() {
            rob.dispatch(slot, sp);
        }
        for slot in 0..live {
            if spec_flags[slot] && safe_subset[slot] {
                rob.mark_safe(slot);
            }
        }
        let comp = BitVec64::from_indices(n, (0..live).filter(|&s| completed[s]));
        let grants = rob.commit_grants(&comp, width);
        assert!(grants.len() <= width);
        // Oracle: dispatch order is slot order here.
        let committable: Vec<usize> = (0..live)
            .filter(|&s| {
                completed[s]
                    && !rob.is_speculative(s)
                    && (0..s).all(|o| !rob.is_speculative(o))
            })
            .collect();
        let want: Vec<usize> = committable.into_iter().take(width).collect();
        assert_eq!(grants, want);
    });
}

/// Wakeup matrix: an instruction is ready iff all its producers have
/// issued, under any issue order.
#[test]
fn wakeup_matches_dataflow() {
    prop::check("wakeup_matches_dataflow", 0xA9E9, |rng| {
        let n = 16;
        let mut wm = WakeupMatrix::new(n);
        // Build a DAG: instruction i may depend only on j < i.
        let mut producers: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let p: Vec<usize> = (0..i).filter(|_| rng.gen::<bool>()).collect();
            wm.dispatch(i, &BitVec64::from_indices(n, p.iter().copied()));
            producers.push(p);
        }
        let mut issued = vec![false; n];
        // Issue in dataflow order until drained; matrix must agree at every
        // step.
        loop {
            let ready = wm.ready_set();
            for i in 0..n {
                let want = !issued[i] && producers[i].iter().all(|&p| issued[p]);
                assert_eq!(ready.get(i), want, "slot {i}");
            }
            match ready.iter_ones().next() {
                Some(i) => {
                    wm.issue(i);
                    issued[i] = true;
                }
                None => break,
            }
        }
        assert!(issued.iter().all(|&b| b));
    });
}

/// Bank steering: grants are free, bank-disjoint, and maximal
/// (min(want, number of banks holding a free entry)).
#[test]
fn bank_steering_is_maximal_matching() {
    prop::check("bank_steering_is_maximal_matching", 0xA9EA, |rng| {
        let n = 32;
        let free_bits: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
        let want = rng.gen_range(0..8usize);
        let banks = rng.gen_range(1..8usize);
        let alloc = BankAllocator::new(n, banks);
        let free = BitVec64::from_indices(n, (0..n).filter(|&i| free_bits[i]));
        let grants = alloc.steer(&free, want);
        // all free
        for &g in &grants {
            assert!(free.get(g));
        }
        // bank-disjoint
        let mut used: Vec<usize> = grants.iter().map(|&g| alloc.bank_of(g)).collect();
        used.sort_unstable();
        let len_before = used.len();
        used.dedup();
        assert_eq!(used.len(), len_before);
        // maximal
        let mut nonempty = std::collections::HashSet::new();
        for i in free.iter_ones() {
            nonempty.insert(alloc.bank_of(i));
        }
        assert_eq!(grants.len(), want.min(nonempty.len()));
    });
}

/// Criticality dispatch: criticals always outrank non-criticals while
/// each class stays in temporal order.
#[test]
fn criticality_total_order() {
    prop::check("criticality_total_order", 0xA9EB, |rng| {
        let n = 24;
        let live = rng.gen_range(1..n);
        let flags: Vec<bool> = (0..live).map(|_| rng.gen::<bool>()).collect();
        let width = rng.gen_range(1..6usize);
        let mut age = AgeMatrix::new(n);
        let mut cri = BitVec64::new(n);
        for (slot, &critical) in flags.iter().enumerate() {
            if critical {
                age.dispatch_critical(slot, &cri);
                cri.set(slot);
            } else {
                age.dispatch(slot);
            }
        }
        let req = BitVec64::from_indices(n, 0..live);
        let got = age.select_oldest(&req, width);
        // Oracle order: criticals by slot (== dispatch) order, then
        // non-criticals by slot order.
        let mut want: Vec<usize> = (0..live).filter(|&s| flags[s]).collect();
        want.extend((0..live).filter(|&s| !flags[s]));
        want.truncate(width);
        assert_eq!(got, want);
    });
}

/// Memory disambiguation matrix vs a naive oracle: a load is
/// non-speculative iff every older-at-issue unresolved store has since
/// resolved without being marked conflicting for it.
#[test]
fn memdis_matches_oracle() {
    use orinoco_matrix::MemDisambigMatrix;
    prop::check("memdis_matches_oracle", 0xA9EC, |rng| {
        let (lq, sq) = (32usize, 16usize);
        let nloads = rng.gen_range(1..24usize);
        let nresolves = rng.gen_range(0..32usize);
        let mut mdm = MemDisambigMatrix::new(lq, sq);
        // oracle: per load, the set of stores still pending
        let mut pending: Vec<Option<u16>> = vec![None; lq];
        for (slot, p) in pending.iter_mut().enumerate().take(nloads) {
            let mask = rng.gen::<u16>();
            let stores =
                BitVec64::from_indices(sq, (0..16).filter(|&b| mask >> b & 1 == 1));
            mdm.load_issue(slot, &stores);
            *p = Some(mask);
        }
        for _ in 0..nresolves {
            let store = rng.gen_range(0..sq);
            let conflict_mask = rng.gen::<u32>();
            // loads NOT in the conflict mask are released
            let mut ok = BitVec64::new(lq);
            for slot in 0..lq {
                if conflict_mask >> (slot % 32) & 1 == 0 {
                    ok.set(slot);
                }
            }
            mdm.store_resolved(store, &ok);
            for (slot, p) in pending.iter_mut().enumerate() {
                if let Some(m) = p.as_mut() {
                    if conflict_mask >> (slot % 32) & 1 == 0 {
                        *m &= !(1 << store);
                    }
                }
            }
            for (slot, p) in pending.iter().enumerate() {
                if let Some(m) = p {
                    assert_eq!(mdm.load_nonspeculative(slot), *m == 0, "slot {slot}");
                }
            }
        }
    });
}

/// Lockdown matrix vs oracle: a committed load is ordered iff every
/// older non-performed load it recorded has performed.
#[test]
fn lockdown_matches_oracle() {
    use orinoco_matrix::LockdownMatrix;
    prop::check("lockdown_matches_oracle", 0xA9ED, |rng| {
        let (ldt, lq) = (8usize, 16usize);
        let ncommits = rng.gen_range(1..12usize);
        let nperforms = rng.gen_range(0..24usize);
        let mut ldm = LockdownMatrix::new(ldt, lq);
        let mut oracle: Vec<Option<u16>> = vec![None; ldt];
        for i in 0..ncommits {
            let mask = rng.gen::<u16>();
            let row = i % ldt;
            let older = BitVec64::from_indices(lq, (0..16).filter(|&b| mask >> b & 1 == 1));
            ldm.commit_load(row, &older);
            oracle[row] = Some(mask);
        }
        for _ in 0..nperforms {
            let lq_slot = rng.gen_range(0..lq);
            ldm.load_performed(lq_slot);
            for o in oracle.iter_mut().flatten() {
                *o &= !(1 << lq_slot);
            }
            for (row, o) in oracle.iter().enumerate() {
                if let Some(m) = o {
                    assert_eq!(ldm.ordered(row), *m == 0, "row {row}");
                }
            }
        }
    });
}

/// Lockdown table: acknowledgements are withheld while any lockdown on
/// the line is live and all withheld acks flush on the last release.
#[test]
fn lockdown_table_refcount_oracle() {
    use orinoco_matrix::LockdownTable;
    use std::collections::HashMap;
    prop::check("lockdown_table_refcount_oracle", 0xA9EE, |rng| {
        let nops = rng.gen_range(1..64usize);
        let mut ldt = LockdownTable::new();
        let mut live: HashMap<u64, u32> = HashMap::new();
        let mut withheld: HashMap<u64, u32> = HashMap::new();
        for _ in 0..nops {
            let op = rng.gen_range(0..3u8);
            let line = rng.gen_range(0..4u64);
            match op {
                0 => {
                    ldt.acquire(line);
                    *live.entry(line).or_default() += 1;
                }
                1 => {
                    if live.get(&line).copied().unwrap_or(0) > 0 {
                        let released = ldt.release(line);
                        let l = live.get_mut(&line).expect("live");
                        *l -= 1;
                        if *l == 0 {
                            live.remove(&line);
                            let want = withheld.remove(&line).unwrap_or(0);
                            assert_eq!(released, want);
                        } else {
                            assert_eq!(released, 0);
                        }
                    }
                }
                _ => {
                    let acked = ldt.incoming_invalidation(line);
                    let locked = live.contains_key(&line);
                    assert_eq!(acked, !locked);
                    if locked {
                        *withheld.entry(line).or_default() += 1;
                    }
                }
            }
        }
        let total_live: usize = live.values().map(|&v| v as usize).sum();
        assert_eq!(ldt.active(), total_live);
    });
}

/// The scratch-buffer (`*_into`) selection API is equivalent to the
/// allocating one for any history, request set and width — including when
/// the output buffer arrives dirty from a previous, larger selection.
#[test]
fn select_oldest_into_equals_allocating() {
    prop::check("select_oldest_into_equals_allocating", 0xA9F0, |rng| {
        let (age, _) = apply_ops(&random_ops(rng));
        let mut out = vec![usize::MAX; rng.gen_range(0..8usize)]; // dirty
        for width in 0..6 {
            let (_, req) = random_request(rng);
            age.select_oldest_into(&req, width, &mut out);
            assert_eq!(out, age.select_oldest(&req, width));
        }
    });
}

/// `younger_than_into` is equivalent to `younger_than`, reusing a dirty
/// output vector of the right length.
#[test]
fn younger_than_into_equals_allocating() {
    prop::check("younger_than_into_equals_allocating", 0xA9F1, |rng| {
        let (age, _) = apply_ops(&random_ops(rng));
        let mut out = BitVec64::ones(N); // dirty
        for s in 0..N {
            if age.is_valid(s) {
                age.younger_than_into(s, &mut out);
                assert_eq!(
                    out.iter_ones().collect::<Vec<_>>(),
                    age.younger_than(s).iter_ones().collect::<Vec<_>>(),
                    "slot {s}"
                );
            }
        }
    });
}

/// The scratch commit-grant API (`commit_grants_into`) and the cheap
/// stall probe (`any_commit_grant`) are equivalent to `commit_grants`
/// for random dispatch/safety/completion states.
#[test]
fn commit_grants_into_equals_allocating() {
    prop::check("commit_grants_into_equals_allocating", 0xA9F2, |rng| {
        let n = 32;
        let live = rng.gen_range(1..n);
        let mut rob = CommitScheduler::new(n);
        for slot in 0..live {
            rob.dispatch(slot, rng.gen::<bool>());
        }
        for slot in 0..live {
            if rob.is_speculative(slot) && rng.gen::<bool>() {
                rob.mark_safe(slot);
            }
        }
        let comp = BitVec64::from_indices(n, (0..live).filter(|_| rng.gen::<bool>()));
        let width = rng.gen_range(1..8usize);
        let want = rob.commit_grants(&comp, width);
        let mut candidates = BitVec64::ones(n); // dirty
        let mut out = vec![usize::MAX; 3]; // dirty
        rob.commit_grants_into(&comp, width, &mut candidates, &mut out);
        assert_eq!(out, want);
        assert_eq!(rob.any_commit_grant(&comp), !rob.commit_grants(&comp, 1).is_empty());
    });
}

/// `read_row_into` / `read_col_into` / `iter_row_ones` agree with the
/// allocating `read_row` / `read_col` on random bit matrices, even when
/// the destination vector arrives dirty.
#[test]
fn bitmatrix_into_readers_equal_allocating() {
    prop::check("bitmatrix_into_readers_equal_allocating", 0xA9F3, |rng| {
        let rows = rng.gen_range(1..80usize);
        let cols = rng.gen_range(1..80usize);
        let mut m = BitMatrix::new(rows, cols);
        for _ in 0..rng.gen_range(0..256usize) {
            m.set(rng.gen_range(0..rows), rng.gen_range(0..cols));
        }
        let mut row_buf = BitVec64::ones(cols); // dirty
        let mut col_buf = BitVec64::ones(rows); // dirty
        for r in 0..rows {
            let want = m.read_row(r);
            m.read_row_into(r, &mut row_buf);
            assert_eq!(
                row_buf.iter_ones().collect::<Vec<_>>(),
                want.iter_ones().collect::<Vec<_>>(),
                "row {r}"
            );
            assert_eq!(
                m.iter_row_ones(r).collect::<Vec<_>>(),
                want.iter_ones().collect::<Vec<_>>(),
                "row {r} (iter)"
            );
        }
        for c in 0..cols {
            let want = m.read_col(c);
            m.read_col_into(c, &mut col_buf);
            assert_eq!(
                col_buf.iter_ones().collect::<Vec<_>>(),
                want.iter_ones().collect::<Vec<_>>(),
                "col {c}"
            );
        }
    });
}

/// The wakeup matrix handles arbitrary DAGs with slot reuse: after a
/// producer issues, its recycled slot must never spuriously wake (or
/// block) a consumer of the *old* occupant.
#[test]
fn wakeup_slot_reuse_oracle() {
    prop::check("wakeup_slot_reuse_oracle", 0xA9EF, |rng| {
        let n = 12;
        let nrounds = rng.gen_range(1..60usize);
        let mut wm = WakeupMatrix::new(n);
        // oracle: per slot, the set of producer slots still pending
        let mut deps: Vec<Option<Vec<usize>>> = vec![None; n];
        for _ in 0..nrounds {
            let slot = rng.gen_range(0..n);
            let nproducers = rng.gen_range(0..3usize);
            if deps[slot].is_some() {
                // occupied: issue it if ready, else skip the round
                if wm.is_ready(slot) {
                    wm.issue(slot);
                    deps[slot] = None;
                    for d in deps.iter_mut().flatten() {
                        d.retain(|&p| p != slot);
                    }
                }
                continue;
            }
            // producers must be live, distinct and not self
            let ps: Vec<usize> = (0..nproducers)
                .map(|_| rng.gen_range(0..n))
                .filter(|&p| p != slot && deps[p].is_some())
                .collect();
            let mut uniq = ps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            wm.dispatch(slot, &BitVec64::from_indices(n, uniq.iter().copied()));
            deps[slot] = Some(uniq);
            // invariant check across all live entries
            for (s, dep) in deps.iter().enumerate() {
                if let Some(d) = dep {
                    assert_eq!(wm.is_ready(s), d.is_empty(), "slot {s}");
                }
            }
        }
    });
}
