//! Word-parallel path property tests at word-boundary capacities.
//!
//! The hot select/grant paths walk masked `u64` words (tzcnt candidate
//! scans, early-exiting rank reads), and every one of them keeps a scalar
//! `*_ref` oracle. Tail-masking and word-straddling bugs live exactly at
//! the 64-bit boundary, so these properties drive capacities 63/64/65/128
//! with randomized dispatch/free/squash histories — fragmented valid
//! sets, holes in every word — and demand the word-parallel outputs equal
//! the scalar oracles (and an explicit sequence-number model) bit for bit.

use orinoco_matrix::{AgeMatrix, BitVec64, CommitScheduler};
use orinoco_util::{prop, Rng};

/// Capacities straddling the word boundary plus the two-word case.
const CAPS: [usize; 4] = [63, 64, 65, 128];

/// Sequence-number model of a non-collapsible queue: `seq[slot]` is the
/// dispatch timestamp of the live instruction in `slot`.
struct SeqModel {
    seq: Vec<Option<u64>>,
    next: u64,
}

impl SeqModel {
    fn new(n: usize) -> Self {
        Self { seq: vec![None; n], next: 0 }
    }
    fn live(&self, slot: usize) -> bool {
        self.seq[slot].is_some()
    }
    /// Live slots in age (dispatch) order, oldest first.
    fn age_order(&self) -> Vec<usize> {
        let mut v: Vec<(u64, usize)> =
            self.seq.iter().enumerate().filter_map(|(s, q)| q.map(|q| (q, s))).collect();
        v.sort_unstable();
        v.into_iter().map(|(_, s)| s).collect()
    }
}

/// Drives `age` and the model through a random dispatch/free/squash
/// history. A squash frees every live entry younger than a random
/// survivor — the wrong-path flush shape that fragments the valid set.
fn random_history(rng: &mut Rng, n: usize) -> (AgeMatrix, SeqModel) {
    let mut age = AgeMatrix::new(n);
    let mut model = SeqModel::new(n);
    for _ in 0..rng.gen_range(1..3 * n) {
        match rng.gen_range(0..10u32) {
            // Dispatch into a random free slot (weighted to keep occupancy up).
            0..=5 => {
                let slot = rng.gen_range(0..n);
                if !model.live(slot) {
                    age.dispatch(slot);
                    model.seq[slot] = Some(model.next);
                    model.next += 1;
                }
            }
            // Free a random live slot (unordered commit).
            6..=8 => {
                let slot = rng.gen_range(0..n);
                if model.live(slot) {
                    age.free(slot);
                    model.seq[slot] = None;
                }
            }
            // Squash everything younger than a random live entry.
            _ => {
                let live = model.age_order();
                if live.is_empty() {
                    continue;
                }
                let pivot = model.seq[live[rng.gen_range(0..live.len())]].unwrap();
                for slot in 0..n {
                    if model.seq[slot].is_some_and(|q| q > pivot) {
                        age.free(slot);
                        model.seq[slot] = None;
                    }
                }
            }
        }
    }
    (age, model)
}

/// A random request vector over the capacity.
fn random_request(rng: &mut Rng, n: usize) -> BitVec64 {
    BitVec64::from_indices(n, (0..n).filter(|_| rng.gen::<bool>()))
}

/// `select_oldest_into`, `grant_mask_into` and `select_single_oldest`
/// equal their scalar `*_ref` oracles and the sequence-number model at
/// every boundary capacity.
#[test]
fn word_parallel_selects_match_oracles_at_boundaries() {
    prop::check("wordpar_select_boundaries", 0x30D0, |rng| {
        for n in CAPS {
            let (age, model) = random_history(rng, n);
            let req = random_request(rng, n);
            let width = rng.gen_range(0..10usize);

            let mut got = Vec::new();
            age.select_oldest_into(&req, width, &mut got);
            let mut reference = Vec::new();
            age.select_oldest_into_ref(&req, width, &mut reference);
            assert_eq!(got, reference, "n={n} width={width}");
            // And both equal the explicit timestamp model.
            let want: Vec<usize> = model
                .age_order()
                .into_iter()
                .filter(|&s| req.get(s))
                .take(width)
                .collect();
            assert_eq!(got, want, "n={n} width={width}");

            let mut mask = BitVec64::new(n);
            age.grant_mask_into(&req, width, &mut mask);
            let mut sorted = want.clone();
            sorted.sort_unstable();
            assert_eq!(mask.iter_ones().collect::<Vec<_>>(), sorted, "n={n} width={width}");

            assert_eq!(
                age.select_single_oldest(&req),
                age.select_single_oldest_ref(&req),
                "n={n}"
            );
            let oldest = model.age_order().into_iter().find(|&s| req.get(s));
            assert_eq!(age.select_single_oldest(&req), oldest, "n={n}");
        }
    });
}

/// Commit-scheduler word scans (`commit_grants_into`, `any_commit_grant`,
/// `commit_grants_in_order_into`) equal the sequence-number model under
/// random speculation/resolution/completion at boundary capacities.
#[test]
fn word_parallel_commit_grants_match_model_at_boundaries() {
    prop::check("wordpar_commit_boundaries", 0x30D1, |rng| {
        for n in CAPS {
            let mut rob = CommitScheduler::new(n);
            let mut model = SeqModel::new(n);
            let mut spec = vec![false; n];
            for _ in 0..rng.gen_range(1..3 * n) {
                match rng.gen_range(0..10u32) {
                    0..=5 => {
                        let slot = rng.gen_range(0..n);
                        if !model.live(slot) {
                            let speculative = rng.gen::<bool>();
                            rob.dispatch(slot, speculative);
                            spec[slot] = speculative;
                            model.seq[slot] = Some(model.next);
                            model.next += 1;
                        }
                    }
                    6..=7 => {
                        let slot = rng.gen_range(0..n);
                        if model.live(slot) && spec[slot] {
                            rob.mark_safe(slot);
                            spec[slot] = false;
                        }
                    }
                    8 => {
                        let slot = rng.gen_range(0..n);
                        if model.live(slot) {
                            rob.free(slot);
                            spec[slot] = false;
                            model.seq[slot] = None;
                        }
                    }
                    _ => {
                        let live = model.age_order();
                        if live.is_empty() {
                            continue;
                        }
                        let pivot = model.seq[live[rng.gen_range(0..live.len())]].unwrap();
                        for (slot, sp) in spec.iter_mut().enumerate().take(n) {
                            if model.seq[slot].is_some_and(|q| q > pivot) {
                                rob.free(slot);
                                *sp = false;
                                model.seq[slot] = None;
                            }
                        }
                    }
                }
            }
            let completed: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
            let comp = BitVec64::from_indices(n, (0..n).filter(|&s| completed[s]));
            let width = rng.gen_range(1..10usize);

            // Model: committable = live, completed, non-speculative, and
            // no older live speculative instruction.
            let order = model.age_order();
            let committable: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&s| {
                    completed[s]
                        && !spec[s]
                        && order.iter().take_while(|&&o| o != s).all(|&o| !spec[o])
                })
                .collect();
            let want: Vec<usize> = committable.iter().copied().take(width).collect();

            let mut candidates = BitVec64::new(n);
            let mut got = Vec::new();
            rob.commit_grants_into(&comp, width, &mut candidates, &mut got);
            assert_eq!(got, want, "n={n} width={width}");
            assert_eq!(rob.any_commit_grant(&comp), !committable.is_empty(), "n={n}");

            // In-order grants: the width oldest live entries, truncated at
            // the first that is not completed-and-safe.
            let mut in_order = Vec::new();
            rob.commit_grants_in_order_into(&comp, width, &mut in_order);
            let want_ioc: Vec<usize> = order
                .iter()
                .copied()
                .take(width.min(n))
                .take_while(|&s| completed[s] && !spec[s])
                .collect();
            assert_eq!(in_order, want_ioc, "n={n} width={width}");
        }
    });
}
