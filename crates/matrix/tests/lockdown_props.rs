//! Property tests for the combined lockdown protocol: the
//! [`LockdownMatrix`] (which older non-performed loads pin each
//! committed-unordered load) driven together with the [`LockdownTable`]
//! (per-line refcounts and withheld acknowledgements), the way the
//! pipeline drives them.
//!
//! The load-bearing property: **a line is never released — and an
//! invalidation to it is never acknowledged — while any
//! committed-unordered load holding a lockdown on that line still waits
//! on a non-performed older load.**

use orinoco_matrix::{BitVec64, LockdownMatrix, LockdownTable};
use orinoco_util::prop;

const LDT: usize = 8;
const LQ: usize = 16;

/// Model state: one active lockdown row = (line, mask of older
/// non-performed LQ slots it still waits on).
#[derive(Default)]
struct Model {
    rows: Vec<Option<(u64, u16)>>,
    /// LQ slots currently holding a non-performed load.
    nonperformed: u16,
    /// Withheld acknowledgements per line.
    withheld: Vec<u32>,
}

impl Model {
    fn new(lines: usize) -> Self {
        Self { rows: vec![None; LDT], nonperformed: 0, withheld: vec![0; lines] }
    }

    fn line_locked(&self, line: u64) -> bool {
        self.rows.iter().flatten().any(|&(l, _)| l == line)
    }

    fn slot_pinned(&self, slot: usize) -> bool {
        self.rows.iter().flatten().any(|&(_, m)| m >> slot & 1 == 1)
    }
}

/// Cross-checks every observable of the matrix/table pair against the
/// model after each protocol step.
fn check_state(ldm: &LockdownMatrix, ldt: &LockdownTable, model: &Model, lines: usize) {
    for (r, row) in model.rows.iter().enumerate() {
        match row {
            Some((_, mask)) => {
                assert_eq!(ldm.ordered(r), *mask == 0, "row {r} ordered");
                assert_eq!(ldm.pending(r), mask.count_ones(), "row {r} pending");
                let want: Vec<usize> = (0..LQ).filter(|&s| mask >> s & 1 == 1).collect();
                assert_eq!(ldm.waiting_on(r), want, "row {r} waiting set");
            }
            None => assert!(ldm.ordered(r), "free row {r} must read ordered"),
        }
    }
    let want_pending: Vec<(usize, u32)> = model
        .rows
        .iter()
        .enumerate()
        .filter_map(|(r, row)| {
            row.and_then(|(_, m)| (m != 0).then_some((r, m.count_ones())))
        })
        .collect();
    assert_eq!(ldm.pending_rows(), want_pending);
    // THE property: table lock state is exactly "some row holds the line".
    let mut active = 0usize;
    for line in 0..lines as u64 {
        let locked = model.line_locked(line);
        assert_eq!(ldt.is_locked(line), locked, "line {line} lock state");
        assert_eq!(ldt.withheld_count(line), model.withheld[line as usize], "line {line} acks");
        active += model
            .rows
            .iter()
            .flatten()
            .filter(|&&(l, _)| l == line)
            .count();
    }
    assert_eq!(ldt.active(), active);
    let want_lines: Vec<u64> =
        (0..lines as u64).filter(|&l| model.line_locked(l)).collect();
    assert_eq!(ldt.locked_lines(), want_lines);
}

/// Random protocol walks: commit-unordered loads acquire lockdowns over
/// random older non-performed sets, loads perform in random order,
/// invalidations arrive at random lines — and at every step the line is
/// locked (acks withheld) exactly while some unordered commit still waits
/// on an older load, with all withheld acks flushed on the last release.
#[test]
fn lockdown_never_releases_while_older_loads_outstanding() {
    prop::check("lockdown_protocol_walk", 0x10CD, |rng| {
        let lines = 4usize;
        let steps = rng.gen_range(1..80usize);
        let mut ldm = LockdownMatrix::new(LDT, LQ);
        let mut ldt = LockdownTable::new();
        let mut model = Model::new(lines);
        for _ in 0..steps {
            match rng.gen_range(0..4u8) {
                // A new load enters the LQ (non-performed) in a slot no
                // lockdown still waits on.
                0 => {
                    let slot = rng.gen_range(0..LQ);
                    if !model.slot_pinned(slot) {
                        model.nonperformed |= 1 << slot;
                    }
                }
                // A load commits out of order: pick a free row, lock its
                // line, record a random subset of the current older
                // non-performed loads.
                1 => {
                    if let Some(r) = (0..LDT).find(|&r| model.rows[r].is_none()) {
                        let line = rng.gen_range(0..lines as u64);
                        let mask = (rng.gen::<u16>()) & model.nonperformed;
                        ldm.commit_load(
                            r,
                            &BitVec64::from_indices(LQ, (0..LQ).filter(|&s| mask >> s & 1 == 1)),
                        );
                        ldt.acquire(line);
                        model.rows[r] = Some((line, mask));
                        // An immediately-ordered commit (no older
                        // non-performed loads) releases right away, as the
                        // pipeline's release pass would.
                    }
                }
                // An older load performs: clear its column, then run the
                // release pass over newly-ordered rows.
                2 => {
                    let live: Vec<usize> =
                        (0..LQ).filter(|&s| model.nonperformed >> s & 1 == 1).collect();
                    if let Some(&slot) = live.get(rng.gen_range(0..live.len().max(1))) {
                        ldm.load_performed(slot);
                        model.nonperformed &= !(1 << slot);
                        for row in model.rows.iter_mut().flatten() {
                            row.1 &= !(1 << slot);
                        }
                    }
                }
                // An invalidation arrives: acked iff the line holds no
                // active lockdown.
                _ => {
                    let line = rng.gen_range(0..lines as u64);
                    let locked = model.line_locked(line);
                    let acked = ldt.incoming_invalidation(line);
                    assert_eq!(acked, !locked, "ack while line {line} locked");
                    if locked {
                        model.withheld[line as usize] += 1;
                    }
                }
            }
            // Release pass (as the pipeline runs after every perform /
            // commit): ordered rows release their line; the last release
            // of a line must return every withheld ack, earlier ones none.
            for r in 0..LDT {
                if let Some((line, mask)) = model.rows[r] {
                    if mask == 0 {
                        assert!(ldm.ordered(r));
                        model.rows[r] = None;
                        let released = ldt.release(line);
                        if model.line_locked(line) {
                            assert_eq!(released, 0, "acks flushed early for line {line}");
                        } else {
                            assert_eq!(
                                released, model.withheld[line as usize],
                                "withheld acks lost on last release of line {line}"
                            );
                            model.withheld[line as usize] = 0;
                        }
                    }
                }
            }
            check_state(&ldm, &ldt, &model, lines);
        }
    });
}

/// Overlap stress: many lockdowns on the *same* line, pinned by
/// overlapping older-load sets. The line must stay locked until the very
/// last pinned row orders — releasing any proper subset must not unlock.
#[test]
fn same_line_lockdowns_release_only_together() {
    prop::check("same_line_overlap", 0x10CE, |rng| {
        let nrows = rng.gen_range(2..LDT + 1);
        let line = 0x40u64;
        let mut ldm = LockdownMatrix::new(LDT, LQ);
        let mut ldt = LockdownTable::new();
        // Each row waits on a random nonempty set; sets may overlap.
        let mut masks: Vec<u16> = (0..nrows)
            .map(|_| loop {
                let m = rng.gen::<u16>();
                if m != 0 {
                    break m;
                }
            })
            .collect();
        for (r, &m) in masks.iter().enumerate() {
            ldm.commit_load(r, &BitVec64::from_indices(LQ, (0..LQ).filter(|&s| m >> s & 1 == 1)));
            ldt.acquire(line);
        }
        assert!(!ldt.incoming_invalidation(line));
        let mut withheld = 1u32;
        // Perform loads one slot at a time in random order.
        let mut order: Vec<usize> = (0..LQ).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..i + 1));
        }
        let mut released_rows = vec![false; nrows];
        let mut live = nrows;
        for slot in order {
            if live == 0 {
                break;
            }
            ldm.load_performed(slot);
            for m in &mut masks {
                *m &= !(1 << slot);
            }
            for r in 0..nrows {
                if !released_rows[r] && masks[r] == 0 {
                    assert!(ldm.ordered(r), "model mask empty but matrix row not zero");
                    released_rows[r] = true;
                    live -= 1;
                    let released = ldt.release(line);
                    if live > 0 {
                        assert_eq!(released, 0, "line unlocked with {live} rows live");
                        assert!(ldt.is_locked(line));
                        // Pile on another withheld ack while still locked.
                        assert!(!ldt.incoming_invalidation(line));
                        withheld += 1;
                    } else {
                        assert_eq!(released, withheld, "withheld acks lost");
                        assert!(!ldt.is_locked(line));
                    }
                }
            }
        }
        assert_eq!(live, 0, "some lockdown never ordered");
        assert!(ldt.incoming_invalidation(line));
    });
}
