//! The Table 2 design points: the four matrix schedulers of the Base
//! configuration, with paper (SPICE) values for side-by-side comparison.

use crate::model::{ArrayCosts, ArrayModel};

/// The published SPICE results for one scheduler (Table 2 of the paper).
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Area (mm²).
    pub area_mm2: f64,
    /// PIM read latency (ps).
    pub latency_ps: f64,
    /// Row write latency (ps).
    pub row_write_ps: f64,
    /// Column clear latency (ps).
    pub column_clear_ps: f64,
    /// Power (W).
    pub power_w: f64,
}

/// One Table 2 scheduler: geometry, paper values, and a representative
/// activity factor (matrix operations per cycle) for the power estimate.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerSpec {
    /// Scheduler name as printed in Table 2.
    pub name: &'static str,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Banks.
    pub banks: usize,
    /// The paper's SPICE results.
    pub paper: PaperRow,
    /// Default operations per cycle when no simulation activity is
    /// supplied (derived from the paper's power at 2 GHz).
    pub default_ops_per_cycle: f64,
}

/// The four Table 2 schedulers of the Base core.
#[must_use]
pub fn table2_schedulers() -> Vec<SchedulerSpec> {
    vec![
        SchedulerSpec {
            name: "Age Matrix (IQ)",
            rows: 96,
            cols: 96,
            banks: 4,
            paper: PaperRow {
                area_mm2: 0.0036,
                latency_ps: 429.0,
                row_write_ps: 350.0,
                column_clear_ps: 350.0,
                power_w: 0.03,
            },
            default_ops_per_cycle: 7.8,
        },
        SchedulerSpec {
            name: "Age Matrix (ROB)",
            rows: 224,
            cols: 224,
            banks: 4,
            paper: PaperRow {
                area_mm2: 0.014,
                latency_ps: 493.0,
                row_write_ps: 406.0,
                column_clear_ps: 406.0,
                power_w: 0.02,
            },
            default_ops_per_cycle: 2.2,
        },
        SchedulerSpec {
            name: "Memory Disambiguation Matrix",
            rows: 72,
            cols: 56,
            banks: 4,
            paper: PaperRow {
                area_mm2: 0.002,
                latency_ps: 364.0,
                row_write_ps: 305.0,
                column_clear_ps: 305.0,
                power_w: 0.06,
            },
            default_ops_per_cycle: 26.8,
        },
        SchedulerSpec {
            name: "Wakeup Matrix",
            rows: 96,
            cols: 96,
            banks: 4,
            paper: PaperRow {
                area_mm2: 0.0036,
                latency_ps: 429.0,
                row_write_ps: 350.0,
                column_clear_ps: 350.0,
                power_w: 0.03,
            },
            default_ops_per_cycle: 7.8,
        },
    ]
}

/// One regenerated Table 2 row.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// The scheduler.
    pub spec: SchedulerSpec,
    /// Modelled physical costs.
    pub model: ArrayCosts,
    /// Modelled power at the given activity (W).
    pub power_w: f64,
}

impl Table2Row {
    /// Largest relative deviation from the paper across area and the
    /// three latencies (power is activity-dependent and compared
    /// separately).
    #[must_use]
    pub fn worst_deviation(&self) -> f64 {
        let p = &self.spec.paper;
        [
            (self.model.area_mm2 - p.area_mm2) / p.area_mm2,
            (self.model.read_latency_ps - p.latency_ps) / p.latency_ps,
            (self.model.row_write_ps - p.row_write_ps) / p.row_write_ps,
            (self.model.column_clear_ps - p.column_clear_ps) / p.column_clear_ps,
        ]
        .into_iter()
        .map(f64::abs)
        .fold(0.0, f64::max)
    }
}

/// Regenerates Table 2 with the analytical model at 2 GHz. Supply per-
/// scheduler activities (ops/cycle) measured from a pipeline run, or
/// `None` to use the calibration defaults.
#[must_use]
pub fn regenerate(activities: Option<[f64; 4]>) -> Vec<Table2Row> {
    let clock_ghz = 2.0; // §6.3: the schedulers are clocked at 2 GHz
    table2_schedulers()
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let model = ArrayModel::pim(spec.rows, spec.cols, spec.banks);
            let ops = activities.map_or(spec.default_ops_per_cycle, |a| a[i]);
            Table2Row {
                spec,
                model: model.costs(),
                power_w: model.power_w(ops, clock_ghz),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_schedulers_with_paper_dimensions() {
        let s = table2_schedulers();
        assert_eq!(s.len(), 4);
        assert_eq!((s[0].rows, s[0].cols), (96, 96));
        assert_eq!((s[1].rows, s[1].cols), (224, 224));
        assert_eq!((s[2].rows, s[2].cols), (72, 56));
        assert!(s.iter().all(|x| x.banks == 4));
    }

    #[test]
    fn model_tracks_paper_within_twenty_percent() {
        for row in regenerate(None) {
            assert!(
                row.worst_deviation() < 0.20,
                "{}: deviation {:.1}% (model {:?} vs paper {:?})",
                row.spec.name,
                row.worst_deviation() * 100.0,
                row.model,
                row.spec.paper,
            );
        }
    }

    #[test]
    fn latencies_fit_a_2ghz_cycle_or_close() {
        // §6.3 sets the scheduler clock to 2 GHz (500 ps) for the worst
        // case (the ROB age matrix); every array must be within ~15% of
        // that budget and the IQ arrays comfortably inside it.
        for row in regenerate(None) {
            assert!(
                row.model.read_latency_ps < 575.0,
                "{} misses 2 GHz: {} ps",
                row.spec.name,
                row.model.read_latency_ps
            );
        }
    }

    #[test]
    fn power_with_paper_activity_matches_order_of_magnitude() {
        for row in regenerate(None) {
            let ratio = row.power_w / row.spec.paper.power_w;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{} power {} W vs paper {} W",
                row.spec.name,
                row.power_w,
                row.spec.paper.power_w
            );
        }
    }

    #[test]
    fn custom_activity_changes_power() {
        let lo = regenerate(Some([1.0, 1.0, 1.0, 1.0]));
        let hi = regenerate(Some([10.0, 10.0, 10.0, 10.0]));
        for (a, b) in lo.iter().zip(&hi) {
            assert!(b.power_w > a.power_w * 5.0);
        }
    }
}
