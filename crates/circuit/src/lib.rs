//! Analytical processing-in-memory circuit model of Orinoco's matrix
//! schedulers (paper §4 and §6.3).
//!
//! The paper implements the age, commit-dependency, memory-disambiguation
//! and wakeup matrices as custom 8T SRAM arrays with bit-line computing:
//! the bitwise AND is word-line activation, the reduction NOR is bit-line
//! precharge + sense, and the **bit count encoding** is the analog voltage
//! drop from parallel discharge paths compared against a tuned reference.
//! It verifies the design in SPICE at 28 nm (Table 2) and measures
//! whole-core overhead with McPAT at 22 nm.
//!
//! This crate substitutes a calibrated analytical model for those
//! commercial flows (documented in `DESIGN.md`): RC scaling laws for
//! latency, cell + peripheral accounting for area, and `α·C·V²` activity
//! energy for power, with constants fit to the four Table 2 design points.
//! On top of it:
//!
//! * [`table2::regenerate`] reproduces Table 2 (optionally with activity
//!   factors measured from the cycle-level pipeline);
//! * [`compare`] reproduces the §6.3 technology comparison — PIM vs 12T
//!   dynamic logic vs static logic, the ~70× collapsible-queue power
//!   wall, the 0.3%/0.6% core overhead — and the §6.4 vertical-split
//!   scaling argument for a 512-entry ROB.
//!
//! # Example
//!
//! ```
//! use orinoco_circuit::ArrayModel;
//!
//! let iq_age = ArrayModel::pim(96, 96, 4);
//! let costs = iq_age.costs();
//! assert!(costs.read_latency_ps < 500.0); // fits the 2 GHz budget
//! assert!(costs.area_mm2 < 0.005);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod compare;
pub mod model;
pub mod table2;

pub use compare::{
    area_reduction_vs_dynamic, collapsible_power_ratio, compare_techs, core_overhead,
    ultra_rob_scaling, CoreOverhead, TechRow,
};
pub use model::{
    collapsible_queue_power_w, ArrayCosts, ArrayGeometry, ArrayModel, SchedulerTech, TechParams,
};
pub use table2::{regenerate, table2_schedulers, PaperRow, SchedulerSpec, Table2Row};
