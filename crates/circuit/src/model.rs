//! The analytical model of the PIM-based matrix schedulers (§4, §6.3).
//!
//! The paper custom-designs 8T SRAM arrays at 28 nm and reports SPICE
//! results (Table 2). We reproduce those design points with a parametric
//! RC/activity model whose scaling laws match the physics the paper
//! leans on:
//!
//! * **Latency** — a PIM read is word-line decode + bit-line discharge +
//!   sensing; the bit line is shared by `rows / banks` cells, so its
//!   capacitance (and hence discharge time) grows linearly with rows per
//!   bank, while the word-line RC grows with columns.
//! * **Area** — `rows × cols` 8T cells at push-rule density, plus
//!   peripherals (sense amplifiers per row — the RBL/RWL transposition
//!   means no SA duplication across banks — and write drivers per
//!   column, plus a constant bank overhead).
//! * **Energy/power** — per-operation dynamic energy `α·C·V²` with the
//!   activity counts supplied by the pipeline simulation, exactly as the
//!   paper feeds gem5 statistics into SPICE.
//!
//! The model constants are calibrated so the four Table 2 design points
//! (96×96, 224×224, 72×56, 96×96 at 4 banks) come out at the published
//! values; everything else (scaling claims of §6.3/§6.4, the comparison
//! against 12T dynamic logic, static logic and collapsible queues) follows
//! from the model without further tuning.

/// Implementation technology of a matrix scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerTech {
    /// The paper's proposal: PIM-enabled 8T SRAM with bit-count sensing.
    PimSram,
    /// Prior matrix schedulers: 12T dynamic-logic cells (Goshima/Sassone).
    DynamicLogic12T,
    /// Register file + combinational reduction tree (static logic).
    StaticLogic,
}

impl SchedulerTech {
    /// Transistors per bit cell.
    #[must_use]
    pub fn transistors_per_cell(self) -> u32 {
        match self {
            SchedulerTech::PimSram => 8,
            SchedulerTech::DynamicLogic12T => 12,
            // flop (~20T) + AND + OR-tree share per bit
            SchedulerTech::StaticLogic => 24,
        }
    }

    /// Layout density relative to push-rule SRAM (area per transistor,
    /// normalised; logic layout is roughly half as dense as push-rule
    /// SRAM cells).
    #[must_use]
    pub fn relative_cell_pitch(self) -> f64 {
        match self {
            SchedulerTech::PimSram => 1.0,
            SchedulerTech::DynamicLogic12T => 2.4,
            SchedulerTech::StaticLogic => 2.6,
        }
    }
}

/// Geometry of one matrix scheduler array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayGeometry {
    /// Matrix rows (instructions tracked).
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Horizontal banks (single write port each, §4.3).
    pub banks: usize,
}

/// Electrical/technology constants of the 28 nm design point.
#[derive(Clone, Copy, Debug)]
pub struct TechParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Lowered write supply for the column-wise clear (V).
    pub vdd_low: f64,
    /// Sense-amplifier reference voltage (V).
    pub vref: f64,
    /// 8T SRAM cell area at 28 nm, push rule (µm²).
    pub cell_area_um2: f64,
    /// Per-row peripheral area (sense amplifier + precharge) (µm²).
    pub row_periph_um2: f64,
    /// Per-column peripheral area (write driver + WWL driver) (µm²).
    pub col_periph_um2: f64,
    /// Fixed per-bank overhead (decode/control) (µm²).
    pub bank_overhead_um2: f64,
    /// Bit-line capacitance per attached cell (fF).
    pub bitline_cap_per_cell_ff: f64,
    /// Word-line capacitance per attached cell (fF).
    pub wordline_cap_per_cell_ff: f64,
    /// Effective discharge current per cell (µA).
    pub cell_current_ua: f64,
    /// Fixed sensing + decode latency (ps).
    pub fixed_latency_ps: f64,
    /// Energy per activated cell per operation (fJ).
    pub energy_per_cell_fj: f64,
}

impl Default for TechParams {
    /// 28 nm constants calibrated against Table 2.
    fn default() -> Self {
        Self {
            vdd: 0.9,
            vdd_low: 0.4,
            vref: 0.48,
            cell_area_um2: 0.25,
            row_periph_um2: 1.9,
            col_periph_um2: 1.9,
            bank_overhead_um2: 180.0,
            bitline_cap_per_cell_ff: 0.0429,
            wordline_cap_per_cell_ff: 1.57,
            cell_current_ua: 18.0,
            fixed_latency_ps: 340.0,
            energy_per_cell_fj: 20.0,
        }
    }
}

/// Modelled physical characteristics of one matrix scheduler.
#[derive(Clone, Copy, Debug)]
pub struct ArrayCosts {
    /// Total array area (mm²).
    pub area_mm2: f64,
    /// PIM read (AND + reduction-NOR / bit-count sense) latency (ps).
    pub read_latency_ps: f64,
    /// Row write (dispatch) latency (ps).
    pub row_write_ps: f64,
    /// Column clear latency (ps).
    pub column_clear_ps: f64,
}

/// The analytical array model.
#[derive(Clone, Copy, Debug)]
pub struct ArrayModel {
    /// Geometry.
    pub geom: ArrayGeometry,
    /// Technology.
    pub tech: SchedulerTech,
    /// Electrical constants.
    pub params: TechParams,
}

impl ArrayModel {
    /// A PIM-SRAM array with default 28 nm constants.
    #[must_use]
    pub fn pim(rows: usize, cols: usize, banks: usize) -> Self {
        Self {
            geom: ArrayGeometry { rows, cols, banks },
            tech: SchedulerTech::PimSram,
            params: TechParams::default(),
        }
    }

    /// Same geometry in a different implementation technology.
    #[must_use]
    pub fn with_tech(mut self, tech: SchedulerTech) -> Self {
        self.tech = tech;
        self
    }

    /// Array area in mm².
    ///
    /// Cells scale with `rows × cols`, the transistor count and layout
    /// pitch of the technology; peripherals scale with the perimeter. The
    /// RBL/RWL transposition shares one SA per matrix row across banks
    /// (§6.3: "no duplication of SAs is needed for banking").
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        let g = &self.geom;
        let p = &self.params;
        let per_cell = p.cell_area_um2 * f64::from(self.tech.transistors_per_cell()) / 8.0
            * self.tech.relative_cell_pitch();
        let cells = per_cell * g.rows as f64 * g.cols as f64;
        // The RBL/RWL transposition lets PIM share sense amplifiers across
        // banks; the logic implementations pay duplicated peripherals.
        let periph_mult = if self.tech == SchedulerTech::PimSram { 1.0 } else { 2.0 };
        let periph = periph_mult
            * (p.row_periph_um2 * g.rows as f64 + p.col_periph_um2 * g.cols as f64)
            + p.bank_overhead_um2 * g.banks as f64;
        (cells + periph) / 1e6
    }

    /// PIM read latency in ps: word-line RC (∝ columns) + bit-line
    /// discharge (∝ rows per bank, since banking splits the RBL load) +
    /// fixed decode/sense time. Static logic instead pays a `log₂(cols)`
    /// reduction tree with a much larger constant.
    #[must_use]
    pub fn read_latency_ps(&self) -> f64 {
        let g = &self.geom;
        let p = &self.params;
        match self.tech {
            SchedulerTech::PimSram | SchedulerTech::DynamicLogic12T => {
                let tech_slowdown = if self.tech == SchedulerTech::PimSram {
                    1.0
                } else {
                    1.15 // dynamic logic: extra precharge phase
                };
                // Voltage swing needed for reliable sensing.
                let swing = p.vdd - p.vref;
                let rows_per_bank = (g.rows as f64 / g.banks as f64).ceil();
                let blc_ff = p.bitline_cap_per_cell_ff * rows_per_bank;
                let discharge_ps = blc_ff * swing / (p.cell_current_ua * 1e-3);
                let wordline_ps = 0.35 * p.wordline_cap_per_cell_ff * g.cols as f64;
                (p.fixed_latency_ps + discharge_ps + wordline_ps) * tech_slowdown
            }
            SchedulerTech::StaticLogic => {
                // AND gate + reduction/popcount tree: ~6 FO4 (≈ 60 ps at
                // 28 nm) per level over log2(cols) levels, plus flop
                // read/setup.
                let levels = (g.cols as f64).log2().ceil();
                220.0 + 95.0 * levels
            }
        }
    }

    /// Row write (dispatch) latency in ps: write-driver setup plus the
    /// word-line/bit-line RC of the array edge lengths.
    #[must_use]
    pub fn row_write_ps(&self) -> f64 {
        308.0 + 0.22 * (self.geom.rows as f64 + self.geom.cols as f64)
    }

    /// Column-wise clear latency in ps (§4.2): dominated by the WWL
    /// under-drive and the lowered-supply cell flip; same order as a row
    /// write.
    #[must_use]
    pub fn column_clear_ps(&self) -> f64 {
        self.row_write_ps()
    }

    /// Dynamic energy of one PIM operation activating `active_cells`
    /// cells, in femtojoules.
    #[must_use]
    pub fn op_energy_fj(&self, active_cells: f64) -> f64 {
        let scale = f64::from(self.tech.transistors_per_cell()) / 8.0;
        self.params.energy_per_cell_fj * active_cells * scale
    }

    /// Average power in watts given per-cycle activity.
    ///
    /// `ops_per_cycle` is the mean number of matrix operations per cycle
    /// (each touching a full row/column of cells) and `clock_ghz` the
    /// operating frequency.
    #[must_use]
    pub fn power_w(&self, ops_per_cycle: f64, clock_ghz: f64) -> f64 {
        let cells_per_op = self.geom.cols as f64;
        let energy_fj = self.op_energy_fj(cells_per_op) * ops_per_cycle;
        // fJ per cycle × cycles per second = fJ/s; 1e-15 J per fJ.
        energy_fj * clock_ghz * 1e9 * 1e-15
    }

    /// All physical costs at once.
    #[must_use]
    pub fn costs(&self) -> ArrayCosts {
        ArrayCosts {
            area_mm2: self.area_mm2(),
            read_latency_ps: self.read_latency_ps(),
            row_write_ps: self.row_write_ps(),
            column_clear_ps: self.column_clear_ps(),
        }
    }

    /// Transistor count of the array (cells only).
    #[must_use]
    pub fn transistors(&self) -> u64 {
        self.geom.rows as u64
            * self.geom.cols as u64
            * u64::from(self.tech.transistors_per_cell())
    }
}

/// Power model of a theoretical collapsible queue (§6.3): on every cycle,
/// potentially every entry is read and written through the compaction mux
/// network, so dynamic power scales with `entries × entry_bits` at full
/// activity. The per-bit shift energy (flop read + write + the wide mux
/// and wiring of the compactor) is ~53 fJ at 28 nm.
#[must_use]
pub fn collapsible_queue_power_w(entries: usize, entry_bits: usize, clock_ghz: f64) -> f64 {
    let fj_per_cycle = 53.0 * entries as f64 * entry_bits as f64;
    fj_per_cycle * clock_ghz * 1e9 * 1e-15
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_grows_quadratically_with_size() {
        let small = ArrayModel::pim(96, 96, 4).area_mm2();
        let large = ArrayModel::pim(224, 224, 4).area_mm2();
        let ratio = large / small;
        assert!(
            (3.0..7.0).contains(&ratio),
            "224²/96² cells ≈ 5.4x, got {ratio}"
        );
    }

    #[test]
    fn banking_cuts_read_latency() {
        let one = ArrayModel::pim(224, 224, 1).read_latency_ps();
        let four = ArrayModel::pim(224, 224, 4).read_latency_ps();
        assert!(four < one, "banked {four} vs monolithic {one}");
    }

    #[test]
    fn pim_denser_than_dynamic_logic() {
        let pim = ArrayModel::pim(96, 96, 4);
        let dyn12 = pim.with_tech(SchedulerTech::DynamicLogic12T);
        // §6.3: a third fewer transistors x double density ≈ 3x+ area gap.
        let ratio = dyn12.area_mm2() / pim.area_mm2();
        assert!(ratio > 2.5, "expected ≥2.5x, got {ratio}");
        assert!(
            dyn12.transistors() as f64 / pim.transistors() as f64 == 1.5,
            "12T/8T transistor ratio"
        );
    }

    #[test]
    fn static_logic_wall_beyond_64() {
        // §6.3: static logic becomes extremely hard to constrain past
        // 64x64; the model's reduction tree should cross ~500 ps (one
        // 2 GHz cycle) around there.
        let at64 = ArrayModel::pim(64, 64, 1)
            .with_tech(SchedulerTech::StaticLogic)
            .read_latency_ps();
        let at224 = ArrayModel::pim(224, 224, 1)
            .with_tech(SchedulerTech::StaticLogic)
            .read_latency_ps();
        assert!(at64 > 700.0, "64x64 static {at64} ps");
        assert!(at224 > at64);
        // while the PIM array stays within ~5% of the 2 GHz budget at
        // 224x224 with banking (the paper reports 493 ps)
        let pim = ArrayModel::pim(224, 224, 4).read_latency_ps();
        assert!(pim < 560.0, "PIM 224x224 {pim} ps");
    }

    #[test]
    fn power_scales_with_activity() {
        let m = ArrayModel::pim(96, 96, 4);
        let idle = m.power_w(0.1, 2.0);
        let busy = m.power_w(4.0, 2.0);
        assert!(busy > idle * 10.0);
    }

    #[test]
    fn collapsible_queue_power_is_enormous() {
        // §6.3: a 96-entry collapsible IQ burns ~2.1 W, ~70x the age
        // matrix.
        let collapsible = collapsible_queue_power_w(96, 128 * 8, 3.2);
        let age = ArrayModel::pim(96, 96, 4).power_w(4.0, 2.0);
        assert!(
            collapsible / age > 20.0,
            "collapsible {collapsible} W vs age {age} W"
        );
    }

    #[test]
    fn costs_bundle_consistent() {
        let m = ArrayModel::pim(96, 96, 4);
        let c = m.costs();
        assert_eq!(c.area_mm2, m.area_mm2());
        assert_eq!(c.read_latency_ps, m.read_latency_ps());
        assert_eq!(c.column_clear_ps, c.row_write_ps);
    }
}
