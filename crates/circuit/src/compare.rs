//! The implementation-technology comparison of §6.3: PIM SRAM versus 12T
//! dynamic logic versus static logic, plus the collapsible-queue power
//! wall and the whole-core overhead estimate.

use crate::model::{collapsible_queue_power_w, ArrayModel, SchedulerTech};
use crate::table2::table2_schedulers;

/// One row of the technology comparison for a given geometry.
#[derive(Clone, Copy, Debug)]
pub struct TechRow {
    /// Technology.
    pub tech: SchedulerTech,
    /// Area (mm²).
    pub area_mm2: f64,
    /// Read latency (ps).
    pub latency_ps: f64,
    /// Cell transistor count.
    pub transistors: u64,
}

/// Compares the three implementation technologies at `rows × cols`
/// (`banks` applies to the array-structured ones).
#[must_use]
pub fn compare_techs(rows: usize, cols: usize, banks: usize) -> Vec<TechRow> {
    [
        SchedulerTech::PimSram,
        SchedulerTech::DynamicLogic12T,
        SchedulerTech::StaticLogic,
    ]
    .into_iter()
    .map(|tech| {
        let m = ArrayModel::pim(rows, cols, banks).with_tech(tech);
        TechRow {
            tech,
            area_mm2: m.area_mm2(),
            latency_ps: m.read_latency_ps(),
            transistors: m.transistors(),
        }
    })
    .collect()
}

/// §6.3 headline: the area reduction of the PIM arrays over traditional
/// dynamic-logic matrix schedulers of the same size (the paper reports
/// 3.75×: a third fewer transistors at double density, plus peripheral
/// savings).
#[must_use]
pub fn area_reduction_vs_dynamic(rows: usize, cols: usize, banks: usize) -> f64 {
    let pim = ArrayModel::pim(rows, cols, banks);
    let dynl = pim.with_tech(SchedulerTech::DynamicLogic12T);
    dynl.area_mm2() / pim.area_mm2()
}

/// §6.3: power of a theoretical 96-entry collapsible IQ relative to the
/// IQ age matrix (the paper reports ~2.1 W, ~70×).
#[must_use]
pub fn collapsible_power_ratio() -> (f64, f64) {
    // A 96-entry IQ holds ~128-bit entries (tags, immediates, control);
    // compaction reads and writes every entry every cycle at 3.2 GHz.
    let collapsible_w = collapsible_queue_power_w(96, 128, 3.2);
    let age = ArrayModel::pim(96, 96, 4).power_w(7.8, 2.0);
    (collapsible_w, collapsible_w / age)
}

/// Whole-core overhead (§6.3): the paper measures the baseline OoO core
/// with McPAT at 22 nm — ~42.5 mm² and ~20 W per core class — and finds
/// the four matrix schedulers add 0.3% area and 0.6% power.
#[derive(Clone, Copy, Debug)]
pub struct CoreOverhead {
    /// Sum of scheduler areas (mm²).
    pub schedulers_mm2: f64,
    /// Assumed core area (mm²).
    pub core_mm2: f64,
    /// Area overhead fraction.
    pub area_fraction: f64,
    /// Sum of scheduler power (W).
    pub schedulers_w: f64,
    /// Assumed core power (W).
    pub core_w: f64,
    /// Power overhead fraction.
    pub power_fraction: f64,
}

/// Computes the whole-core overhead of the four Table 2 schedulers
/// against a Skylake-class core budget (the McPAT substitution).
#[must_use]
pub fn core_overhead() -> CoreOverhead {
    let rows = crate::table2::regenerate(None);
    let schedulers_mm2: f64 = rows.iter().map(|r| r.model.area_mm2).sum();
    let schedulers_w: f64 = rows.iter().map(|r| r.power_w).sum();
    // A Skylake-class core + private L2 is ~8.5 mm² at 14 nm; McPAT at
    // 22 nm as used by the paper lands near 8 mm² core-only with ~22 W.
    let core_mm2 = 8.0;
    let core_w = 22.0;
    CoreOverhead {
        schedulers_mm2,
        core_mm2,
        area_fraction: schedulers_mm2 / core_mm2,
        schedulers_w,
        core_w,
        power_fraction: schedulers_w / core_w,
    }
}

/// §6.4 scaling check: the 512-entry ROB age matrix of the Ultra core —
/// splitting the array vertically in addition to horizontal banking (the
/// paper's suggestion) restores the latency to the pipeline budget.
#[must_use]
pub fn ultra_rob_scaling() -> (f64, f64) {
    // Ultra is 8-wide, so its schedulers have 8 horizontal banks (§4.3).
    let monolithic = ArrayModel::pim(512, 512, 8).read_latency_ps();
    // Vertical split: each half holds 256 columns; the partial results
    // merge through one extra 2-input NOR (≈ 25 ps), per §6.4.
    let split = ArrayModel::pim(512, 256, 8).read_latency_ps() + 25.0;
    (monolithic, split)
}

/// Convenience: the four Table 2 scheduler names (for harness printing).
#[must_use]
pub fn scheduler_names() -> Vec<&'static str> {
    table2_schedulers().into_iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tech_comparison_orders_area() {
        let rows = compare_techs(96, 96, 4);
        assert!(rows[0].area_mm2 < rows[1].area_mm2);
        assert!(rows[1].area_mm2 <= rows[2].area_mm2);
        assert_eq!(rows[0].transistors, 96 * 96 * 8);
        assert_eq!(rows[1].transistors, 96 * 96 * 12);
    }

    #[test]
    fn area_reduction_near_paper() {
        // Paper: 3.75x. The model lands in the 2.5-4.5x band.
        let r = area_reduction_vs_dynamic(224, 224, 4);
        assert!((2.5..4.5).contains(&r), "area reduction {r}");
    }

    #[test]
    fn collapsible_power_wall() {
        let (watts, ratio) = collapsible_power_ratio();
        // Paper: ~2.1 W and ~70x the age matrix.
        assert!((1.0..4.0).contains(&watts), "collapsible {watts} W");
        assert!(ratio > 25.0, "ratio {ratio}");
    }

    #[test]
    fn overhead_fractions_sub_percent() {
        let o = core_overhead();
        // Paper: 0.3% area, 0.6% power.
        assert!(o.area_fraction < 0.01, "area {:.3}%", o.area_fraction * 100.0);
        assert!(o.power_fraction < 0.015, "power {:.3}%", o.power_fraction * 100.0);
        assert!(o.schedulers_mm2 > 0.0 && o.schedulers_w > 0.0);
    }

    #[test]
    fn ultra_rob_needs_vertical_split() {
        let (mono, split) = ultra_rob_scaling();
        assert!(mono > 575.0, "512x512 should miss the budget: {mono} ps");
        assert!(split < mono);
        // The split array lands within ~15% of the 500 ps budget; the
        // paper additionally drops the bit-count sensing for the ROB age
        // matrix (plain NOR), which relaxes the sense margin.
        assert!(split < 575.0, "split array {split} ps");
    }
}
