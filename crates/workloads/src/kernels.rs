//! The kernel builders. Each returns a ready-to-run [`Emulator`] with
//! program and data initialised; iteration counts target 100–300k dynamic
//! instructions at `scale = 1`.

use crate::{f, finish, x};
use orinoco_isa::{ArchReg, Emulator, ProgramBuilder};
use orinoco_util::{Rng, SliceRandom as _};

const LINE: u64 = 64;

/// Writes a single-cycle random permutation ("next" pointers, one node per
/// cache line) into `[base, base + nodes*64)`.
fn init_chase_region(emu: &mut Emulator, base: u64, nodes: usize, rng: &mut Rng) {
    let mut order: Vec<u64> = (0..nodes as u64).collect();
    order.shuffle(rng);
    for k in 0..nodes {
        let cur = base + order[k] * LINE;
        let next = base + order[(k + 1) % nodes] * LINE;
        emu.store_word(cur, next);
    }
}

/// `mcf_like` (ways = 1): a dependent pointer chase over a 4 MiB ring —
/// zero MLP, recurrence-bound, insensitive to scheduling and commit policy
/// (the memory round trip *is* the critical path).
///
/// `linkedlist_like` (ways > 1): traversal of an **array of node
/// pointers** ("arcs array" flavour): each iteration streams the next
/// pointer from a sequential array and dereferences it into a 4 MiB node
/// pool — the dereferences are independent DRAM misses, so memory-level
/// parallelism scales with how far the in-flight window reaches, which is
/// exactly what early resource reclamation extends.
pub(crate) fn pointer_chase(rng: &mut Rng, scale: u32, ways: usize) -> Emulator {
    let mem: usize = 16 << 20;
    if ways == 1 {
        let iters = 40_000 * i64::from(scale);
        let nodes = (4 << 20) / LINE as usize;
        let mut b = ProgramBuilder::new();
        let ctr = x(1);
        b.li(ctr, iters);
        let top = b.label();
        b.bind(top);
        b.ld(x(10), x(10), 0);
        b.addi(ctr, ctr, -1);
        b.bne(ctr, ArchReg::ZERO, top);
        return finish(b, mem, |emu| {
            init_chase_region(emu, 0, nodes, rng);
            emu.set_reg(x(10), 0);
        });
    }
    // Array-of-pointers gather: pointer array at [8 MiB, 12 MiB), node
    // pool in [0, 4 MiB).
    let iters = 16_000 * i64::from(scale);
    let arr_base: u64 = 8 << 20;
    let mut b = ProgramBuilder::new();
    let (ctr, ap, p, v, acc) = (x(1), x(10), x(11), x(12), x(13));
    let (t0, t1, t2) = (x(20), x(21), x(22));
    b.li(ctr, iters);
    let top = b.label();
    b.bind(top);
    b.ld(p, ap, 0); // next node pointer (sequential, prefetch-friendly)
    b.ld(v, p, 0); // independent random dereference (DRAM miss)
    // A swarm of node-value processing wakes at once when the miss
    // returns; arbitrating these bursts oldest-first keeps the commit
    // window moving (Figure 14), while their independence across nodes
    // preserves the MLP that out-of-order commit extends (Figure 15).
    b.xor(t0, v, acc);
    b.slli(t1, v, 3);
    b.add(t2, t0, t1);
    b.srli(t0, v, 7);
    b.xor(acc, acc, t2);
    b.add(acc, acc, t0);
    // Independent pointer bookkeeping.
    b.addi(ap, ap, 8);
    b.andi(ap, ap, (4 << 20) - 8); // offset within the 4 MiB array
    b.add(ap, ap, x(23)); // rebase (x23 holds the array base)
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        let nodes = (4u64 << 20) / LINE;
        for i in 0..(1u64 << 19) {
            let node = rng.gen_range(0..nodes) * LINE;
            emu.store_word(arr_base + i * 8, node);
        }
        // node pool contents
        for i in 0..nodes {
            emu.store_word(i * LINE, rng.gen::<u64>());
        }
        emu.set_reg(x(10), arr_base);
        emu.set_reg(x(23), arr_base);
    })
}

/// `memlat_like`: a dependent pointer chase over an **8 MiB** ring —
/// far larger than the LLC, so nearly every hop is a full DRAM round
/// trip with zero MLP and only loop bookkeeping between misses. The
/// pipeline sits completely idle for the vast majority of cycles
/// waiting on the single outstanding miss, which makes this the stress
/// workload for the idle-cycle fast-forward path (and the worst case
/// for a naive cycle loop).
pub(crate) fn memlat(rng: &mut Rng, scale: u32) -> Emulator {
    let mem: usize = 16 << 20;
    let iters = 30_000 * i64::from(scale);
    let nodes = (8 << 20) / LINE as usize;
    let mut b = ProgramBuilder::new();
    let ctr = x(1);
    b.li(ctr, iters);
    let top = b.label();
    b.bind(top);
    b.ld(x(10), x(10), 0);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        init_chase_region(emu, 0, nodes, rng);
        emu.set_reg(x(10), 0);
    })
}

/// The long-run sampling workload: `outer` rounds of four heterogeneous
/// phases (unit-stride FP streaming, a dependent pointer chase over a
/// 2 MiB ring, six independent integer compute chains, and an
/// interpreter-style dispatch ladder), ~9–10k dynamic instructions per
/// round. Phase heterogeneity is the point: whole-program IPC is a blend
/// of four very different regimes, so a sampling estimator only gets it
/// right if its intervals cover all of them — exactly what the
/// checkpointed interval sampler is validated against. Rounds repeat the
/// same code over wrapping pointers, so the dynamic length is linear in
/// `outer` and programs of 100M+ instructions cost no extra build time.
pub(crate) fn phased(rng: &mut Rng, outer: i64) -> Emulator {
    assert!(outer > 0, "outer round count must be positive");
    let mem: usize = 8 << 20;
    let chase_base: u64 = 0x20_0000; // 2 MiB ring (straddles the LLC)
    let chase_nodes = (2usize << 20) / LINE as usize;
    let mut b = ProgramBuilder::new();
    let (ctr, inner) = (x(1), x(2));
    // Persistent across rounds: x9 chase pointer; x10/x11/x12 stream
    // dst/src/src; x13 dispatch cursor; x14 store cursor; x15 dispatch
    // accumulator; x16-x21 compute-chain accumulators.
    for c in 0..6u8 {
        b.li(x(16 + c), rng.gen_range(1..1000));
    }
    b.li(ctr, outer);
    let o_top = b.label();
    b.bind(o_top);
    // Phase A — streaming: a[i] = b[i] + c[i] over 512 KiB arrays,
    // prefetcher-friendly, high MLP.
    b.li(inner, 256);
    let a_top = b.label();
    b.bind(a_top);
    b.ld(f(0), x(11), 0);
    b.ld(f(1), x(12), 0);
    b.fadd(f(2), f(0), f(1));
    b.st(f(2), x(10), 0);
    b.addi(x(10), x(10), 8);
    b.andi(x(10), x(10), 0x57_FFF8); // wrap in [5 MiB, 5.5 MiB)
    b.addi(x(11), x(11), 8);
    b.andi(x(11), x(11), 0x47_FFF8); // wrap in [4 MiB, 4.5 MiB)
    b.addi(x(12), x(12), 8);
    b.andi(x(12), x(12), 0x4F_FFF8); // wrap in [4.5 MiB, 5 MiB)
    b.addi(inner, inner, -1);
    b.bne(inner, ArchReg::ZERO, a_top);
    // Phase B — dependent pointer chase: zero MLP, recurrence-bound.
    b.li(inner, 192);
    let b_top = b.label();
    b.bind(b_top);
    b.ld(x(9), x(9), 0);
    b.addi(inner, inner, -1);
    b.bne(inner, ArchReg::ZERO, b_top);
    // Phase C — six independent register-resident compute chains:
    // issue-port-bound ILP, no memory.
    b.li(inner, 96);
    let c_top = b.label();
    b.bind(c_top);
    for c in 0..6u8 {
        let (a, t) = (x(16 + c), x(22 + c));
        b.xor(t, a, inner);
        b.slli(t, t, 1 + i64::from(c % 5));
        b.add(a, a, t);
        b.srli(a, a, 1 + i64::from(c % 3));
    }
    b.addi(inner, inner, -1);
    b.bne(inner, ArchReg::ZERO, c_top);
    // Phase D — interpreter dispatch ladder over random bytecodes:
    // data-dependent, poorly predictable branches.
    let (val, op, t1, t2, acc) = (x(28), x(29), x(30), x(31), x(15));
    b.li(inner, 256);
    let d_top = b.label();
    let case1 = b.label();
    let case2 = b.label();
    let case3 = b.label();
    let done = b.label();
    b.bind(d_top);
    b.ld(val, x(13), 0);
    b.addi(x(13), x(13), 8);
    b.andi(x(13), x(13), 0x67_FFF8); // wrap in [6 MiB, 6.5 MiB)
    b.andi(op, val, 3);
    b.li(t1, 1);
    b.beq(op, t1, case1);
    b.li(t1, 2);
    b.beq(op, t1, case2);
    b.li(t1, 3);
    b.beq(op, t1, case3);
    b.add(acc, acc, val); // case 0
    b.jal(ArchReg::ZERO, done);
    b.bind(case1);
    b.xor(acc, acc, val);
    b.jal(ArchReg::ZERO, done);
    b.bind(case2);
    b.sub(acc, acc, val);
    b.jal(ArchReg::ZERO, done);
    b.bind(case3);
    b.srli(t2, val, 9);
    b.add(acc, acc, t2);
    b.bind(done);
    b.addi(inner, inner, -1);
    b.bne(inner, ArchReg::ZERO, d_top);
    // Spill the round's accumulator (keeps the stores architecturally
    // live) and close the outer loop.
    b.st(acc, x(14), 0);
    b.addi(x(14), x(14), 8);
    b.andi(x(14), x(14), 0x70_FFF8); // wrap in [7 MiB, 7 MiB + 64 KiB)
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, o_top);
    finish(b, mem, |emu| {
        init_chase_region(emu, chase_base, chase_nodes, rng);
        emu.set_reg(x(9), chase_base);
        emu.set_reg(x(10), 0x50_0000);
        emu.set_reg(x(11), 0x40_0000);
        emu.set_reg(x(12), 0x48_0000);
        emu.set_reg(x(13), 0x60_0000);
        emu.set_reg(x(14), 0x70_0000);
        for i in 0..(1u64 << 16) {
            let v = f64::from(rng.gen_range(0..100)).to_bits();
            emu.store_word(0x40_0000 + i * 8, v);
            let w = f64::from(rng.gen_range(0..100)).to_bits();
            emu.store_word(0x48_0000 + i * 8, w);
            emu.store_word(0x60_0000 + i * 8, rng.gen::<u64>());
        }
    })
}

/// `stream_like`: `a[i] = b[i] + c[i]` over 1 MiB arrays — unit-stride,
/// prefetcher-friendly, high MLP.
pub(crate) fn stream(rng: &mut Rng, scale: u32) -> Emulator {
    let mem = 4 << 20;
    let n = 20_000 * i64::from(scale);
    let (pa, pb, pc, ctr) = (x(10), x(11), x(12), x(1));
    let mut b = ProgramBuilder::new();
    b.li(ctr, n);
    let top = b.label();
    b.bind(top);
    b.ld(f(0), pb, 0);
    b.ld(f(1), pc, 0);
    b.fadd(f(2), f(0), f(1));
    b.st(f(2), pa, 0);
    b.addi(pa, pa, 8);
    b.addi(pb, pb, 8);
    b.addi(pc, pc, 8);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        emu.set_reg(x(10), 0);
        emu.set_reg(x(11), 1 << 20);
        emu.set_reg(x(12), 2 << 20);
        for i in 0..(1 << 17) {
            emu.store_word((1 << 20) + i * 8, f64::from(rng.gen_range(0..100)).to_bits());
            emu.store_word((2 << 20) + i * 8, f64::from(rng.gen_range(0..100)).to_bits());
        }
    })
}

/// `gemm_like`: N×N×N FP matrix multiply (N = 28) with register-blocked
/// inner product — compute-dense, cache-resident.
pub(crate) fn gemm(rng: &mut Rng, scale: u32) -> Emulator {
    let n: i64 = 28;
    let mem = 1 << 20;
    let (a_base, b_base, c_base) = (0u64, 64 << 10, 128 << 10);
    let mut b = ProgramBuilder::new();
    let (i, j, k) = (x(1), x(2), x(3));
    let (pa, pb, pcm) = (x(10), x(11), x(12));
    let (acc, va, vb) = (f(0), f(1), f(2));
    let reps = x(4);
    b.li(reps, i64::from(scale));
    let rep_top = b.label();
    b.bind(rep_top);
    b.li(i, n);
    let i_top = b.label();
    b.bind(i_top);
    b.li(j, n);
    let j_top = b.label();
    b.bind(j_top);
    // acc = 0; pa = &A[i][0]; pb = &B[0][j] — pointer arithmetic kept in
    // registers (x20 = row base of A, x21 = column base of B).
    b.fcvt(acc, ArchReg::ZERO);
    b.add(pa, x(20), ArchReg::ZERO);
    b.add(pb, x(21), ArchReg::ZERO);
    b.li(k, n);
    let k_top = b.label();
    b.bind(k_top);
    b.ld(va, pa, 0);
    b.ld(vb, pb, 0);
    b.fmul(va, va, vb);
    b.fadd(acc, acc, va);
    b.addi(pa, pa, 8);
    b.addi(pb, pb, 8 * n);
    b.addi(k, k, -1);
    b.bne(k, ArchReg::ZERO, k_top);
    b.st(acc, pcm, 0);
    b.addi(pcm, pcm, 8);
    b.addi(x(21), x(21), 8); // next column of B
    b.addi(j, j, -1);
    b.bne(j, ArchReg::ZERO, j_top);
    b.addi(x(20), x(20), 8 * n); // next row of A
    b.li(x(21), b_base as i64); // reset column base
    b.addi(i, i, -1);
    b.bne(i, ArchReg::ZERO, i_top);
    // reset pointers for the next repetition
    b.li(x(20), a_base as i64);
    b.li(x(21), b_base as i64);
    b.li(pcm, c_base as i64);
    b.addi(reps, reps, -1);
    b.bne(reps, ArchReg::ZERO, rep_top);
    finish(b, mem, |emu| {
        emu.set_reg(x(20), a_base);
        emu.set_reg(x(21), b_base);
        emu.set_reg(x(12), c_base);
        for idx in 0..(n * n) as u64 {
            emu.store_word(a_base + idx * 8, f64::from(rng.gen_range(1..10)).to_bits());
            emu.store_word(b_base + idx * 8, f64::from(rng.gen_range(1..10)).to_bits());
        }
    })
}

/// `hashjoin_like`: hash-probe gathers over a 512 KiB key table with a
/// data-dependent (50/50) branch per probe.
pub(crate) fn hashjoin(rng: &mut Rng, scale: u32) -> Emulator {
    let mem = 4 << 20;
    let table_bits = 16; // 2^16 keys * 8 B = 512 KiB
    let probes = 20_000 * i64::from(scale);
    let mut b = ProgramBuilder::new();
    let (ctr, h, idx, addr, key, hits, mult) = (x(1), x(2), x(3), x(4), x(5), x(6), x(7));
    b.li(ctr, probes);
    b.li(h, rng.gen_range(1..i64::MAX));
    b.li(mult, 0x27BB_2EE6_87B0_B0FD_u64 as i64);
    let top = b.label();
    let miss = b.label();
    b.bind(top);
    // h = h * LCG_MULT + 0xB504F32D
    b.mul(h, h, mult);
    b.addi(h, h, 0xB504_F32D);
    b.srli(idx, h, 64 - table_bits);
    b.slli(idx, idx, 3);
    b.add(addr, idx, x(10)); // table base
    b.ld(key, addr, 0);
    b.andi(key, key, 63);
    b.bne(key, ArchReg::ZERO, miss); // rare match (~1.6%): predictable
    b.addi(hits, hits, 1);
    b.bind(miss);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        emu.set_reg(x(10), 0);
        for i in 0..(1u64 << table_bits) {
            emu.store_word(i * 8, rng.gen::<u64>());
        }
    })
}

/// `exchange_like`: register-resident integer crunching with perfectly
/// predictable short loops (`exchange2`-style puzzle solving).
pub(crate) fn exchange(rng: &mut Rng, scale: u32) -> Emulator {
    let outer = 2_200 * i64::from(scale);
    let chains: usize = 6;
    let mut b = ProgramBuilder::new();
    let (ctr, inner) = (x(1), x(2));
    // Six independent accumulator chains keep more instructions ready
    // than the integer issue ports every cycle, so select-order quality
    // (Figure 14) matters.
    for c in 0..chains {
        b.li(x(3 + c as u8), rng.gen_range(1..1000));
    }
    b.li(ctr, outer);
    let top = b.label();
    b.bind(top);
    b.li(inner, 6);
    let in_top = b.label();
    b.bind(in_top);
    for c in 0..chains as u8 {
        let (a, t) = (x(3 + c), x(12 + c));
        b.xor(t, a, inner);
        b.sll(t, t, inner);
        b.add(a, a, t);
        b.srli(a, a, 1 + i64::from(c % 3));
    }
    b.addi(inner, inner, -1);
    b.bne(inner, ArchReg::ZERO, in_top);
    b.mul(x(3), x(3), x(4));
    b.st(x(3), x(10), 0);
    b.addi(x(10), x(10), 8);
    b.andi(x(10), x(10), 0xFFF8);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, 1 << 16, |emu| {
        emu.set_reg(x(10), 0);
    })
}

/// `perl_like`: interpreter-style dispatch ladder over random byte codes —
/// many data-dependent, poorly predictable branches.
pub(crate) fn perl(rng: &mut Rng, scale: u32) -> Emulator {
    let mem = 1 << 20;
    let n = 15_000 * i64::from(scale);
    let mut b = ProgramBuilder::new();
    let (ctr, pcur, val, op, acc) = (x(1), x(10), x(2), x(3), x(4));
    let (t1, t2) = (x(5), x(6));
    b.li(ctr, n);
    let top = b.label();
    let case1 = b.label();
    let case2 = b.label();
    let case3 = b.label();
    let done = b.label();
    b.bind(top);
    b.ld(val, pcur, 0);
    b.addi(pcur, pcur, 8);
    b.andi(pcur, pcur, 0x7_FFF8); // wrap in 512 KiB
    b.andi(op, val, 3);
    b.li(t1, 1);
    b.beq(op, t1, case1);
    b.li(t2, 2);
    b.beq(op, t2, case2);
    b.li(t2, 3);
    b.beq(op, t2, case3);
    // case 0
    b.add(acc, acc, val);
    b.jal(ArchReg::ZERO, done);
    b.bind(case1);
    b.xor(acc, acc, val);
    b.jal(ArchReg::ZERO, done);
    b.bind(case2);
    b.sub(acc, acc, val);
    b.jal(ArchReg::ZERO, done);
    b.bind(case3);
    b.srli(t2, val, 7);
    b.add(acc, acc, t2);
    b.bind(done);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        emu.set_reg(x(10), 0);
        for i in 0..(1u64 << 16) {
            emu.store_word(i * 8, rng.gen::<u64>());
        }
    })
}

/// `xz_like`: integer mixing with loads and stores over a 256 KiB buffer,
/// strided semi-sequentially (match-finder flavour).
pub(crate) fn xz(rng: &mut Rng, scale: u32) -> Emulator {
    let mem = 1 << 20;
    let n = 16_000 * i64::from(scale);
    let mut b = ProgramBuilder::new();
    let (ctr, p, q, a, c) = (x(1), x(10), x(11), x(2), x(3));
    b.li(ctr, n);
    let top = b.label();
    b.bind(top);
    b.ld(a, p, 0);
    b.ld(c, q, 0);
    b.xor(a, a, c);
    b.slli(c, a, 13);
    b.xor(a, a, c);
    b.srli(c, a, 7);
    b.xor(a, a, c);
    b.st(a, p, 0);
    b.addi(p, p, 24);
    b.andi(p, p, 0x3_FFF8);
    b.addi(q, q, 40);
    b.andi(q, q, 0x3_FFF8);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        emu.set_reg(x(10), 0);
        emu.set_reg(x(11), 128);
        for i in 0..(1u64 << 15) {
            emu.store_word(i * 8, rng.gen::<u64>());
        }
    })
}

/// `lbm_like`: FP-heavy streaming with stores over a 2 MiB grid.
pub(crate) fn lbm(rng: &mut Rng, scale: u32) -> Emulator {
    let mem = 4 << 20;
    let n = 11_000 * i64::from(scale);
    let mut b = ProgramBuilder::new();
    let (ctr, p, q) = (x(1), x(10), x(11));
    b.li(ctr, n);
    let top = b.label();
    b.bind(top);
    b.ld(f(0), p, 0);
    b.ld(f(1), p, 8);
    b.ld(f(2), q, 0);
    b.fadd(f(3), f(0), f(1));
    b.fmul(f(4), f(3), f(2));
    b.fsub(f(5), f(4), f(0));
    b.fadd(f(6), f(5), f(2));
    b.fmul(f(7), f(6), f(1));
    b.st(f(7), p, 0);
    b.st(f(6), q, 0);
    b.addi(p, p, 16);
    b.andi(p, p, 0x1F_FFF8);
    b.addi(q, q, 16);
    b.andi(q, q, 0x1F_FFF8);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        emu.set_reg(x(10), 0);
        emu.set_reg(x(11), 2 << 20);
        for i in 0..(1u64 << 18) {
            emu.store_word(i * 8, f64::from(rng.gen_range(1..5)).to_bits());
        }
    })
}

/// `deepsjeng_like`: board-logic flavour — bit manipulation, table
/// lookups from 512 KiB, and a mix of predictable and data-dependent
/// branches.
pub(crate) fn deepsjeng(rng: &mut Rng, scale: u32) -> Emulator {
    let mem = 1 << 20;
    let n = 14_000 * i64::from(scale);
    let mut b = ProgramBuilder::new();
    let (ctr, bb, t1, t2, addr, sc, sc2) = (x(1), x(2), x(3), x(4), x(5), x(6), x(7));
    b.li(bb, rng.gen::<i64>().wrapping_abs() | 1);
    b.li(ctr, n);
    let top = b.label();
    let skip = b.label();
    let neg = b.label();
    let cont = b.label();
    b.bind(top);
    // bitboard mixing (independent of the score chains)
    b.slli(t1, bb, 17);
    b.xor(bb, bb, t1);
    b.srli(t1, bb, 29);
    b.xor(bb, bb, t1);
    // table lookup keyed by the bitboard (64 KiB table: mostly L1/L2)
    b.srli(addr, bb, 51);
    b.slli(addr, addr, 3);
    b.ld(t2, addr, 0);
    // data-dependent branch on the fetched entry
    b.andi(t1, t2, 7);
    b.beq(t1, ArchReg::ZERO, skip);
    b.add(sc, sc, t2);
    b.bind(skip);
    // predictable sign test on the second accumulator
    b.blt(sc2, ArchReg::ZERO, neg);
    b.addi(sc2, sc2, 1);
    b.jal(ArchReg::ZERO, cont);
    b.bind(neg);
    b.sub(sc2, ArchReg::ZERO, sc2);
    b.bind(cont);
    b.xor(sc2, sc2, bb);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        for i in 0..(1u64 << 13) {
            emu.store_word(i * 8, rng.gen::<u64>());
        }
    })
}

/// `stencil_like`: 3-point FP stencil `b[i] = k*(a[i-1]+a[i]+a[i+1])` over
/// a 512 KiB grid.
pub(crate) fn stencil(rng: &mut Rng, scale: u32) -> Emulator {
    let mem = 2 << 20;
    let n = 13_000 * i64::from(scale);
    let mut b = ProgramBuilder::new();
    let (ctr, p, q) = (x(1), x(10), x(11));
    b.li(ctr, n);
    let top = b.label();
    b.bind(top);
    b.ld(f(0), p, 0);
    b.ld(f(1), p, 8);
    b.ld(f(2), p, 16);
    b.fadd(f(3), f(0), f(1));
    b.fadd(f(3), f(3), f(2));
    b.fmul(f(4), f(3), f(8)); // f8 = 1/3
    b.st(f(4), q, 0);
    b.addi(p, p, 8);
    b.andi(p, p, 0x7_FFF8);
    b.addi(q, q, 8);
    b.andi(q, q, 0x7_FFF8);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        emu.set_reg(x(10), 0);
        emu.set_reg(x(11), 1 << 20);
        emu.set_reg(f(8), (1.0f64 / 3.0).to_bits());
        for i in 0..(1u64 << 16) {
            emu.store_word(i * 8, f64::from(rng.gen_range(0..10)).to_bits());
        }
    })
}

/// `mix_like`: serial divide chains interleaved with independent loads —
/// long-latency instructions park at the ROB head and strangle in-order
/// commit, while independent work behind them completes.
pub(crate) fn divmix(rng: &mut Rng, scale: u32) -> Emulator {
    let mem = 4 << 20;
    let n = 4_500 * i64::from(scale);
    let mut b = ProgramBuilder::new();
    let (ctr, dv, three, h, addr, acc, mult) = (x(1), x(2), x(3), x(4), x(5), x(6), x(7));
    b.li(ctr, n);
    b.li(three, 3);
    b.li(h, rng.gen_range(1..i64::MAX));
    b.li(mult, 0x27BB_2EE6_87B0_B0FD_u64 as i64);
    let top = b.label();
    b.bind(top);
    // One long-latency op per iteration that parks at the ROB head under
    // in-order commit (latency-critical, not divider-throughput-bound)...
    b.li(dv, 1_000_000_007);
    b.div(dv, dv, three);
    // ...followed by a burst of independent random loads whose xorshift
    // address generation stays off the divider's pool.
    for _ in 0..8 {
        b.slli(mult, h, 13);
        b.xor(h, h, mult);
        b.srli(mult, h, 7);
        b.xor(h, h, mult);
        b.slli(mult, h, 17);
        b.xor(h, h, mult);
        b.srli(addr, h, 46); // 2 MiB reach: a mix of LLC hits and misses
        b.slli(addr, addr, 3);
        b.ld(acc, addr, 0);
    }
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    finish(b, mem, |emu| {
        for i in 0..(1u64 << 15) {
            emu.store_word(i * 8 * 16, rng.gen::<u64>());
        }
    })
}
