//! Synthetic SPEC-CPU2017-like kernels for the Orinoco evaluation.
//!
//! The paper evaluates on SPEC CPU2017 SimPoint regions, which are not
//! redistributable; these kernels span the same behaviour axes that drive
//! the paper's per-benchmark spread — memory-boundness (MLP), compute
//! density (ILP), branch predictability, long-latency dependence chains —
//! so the *relative* results of the scheduler and commit policies keep
//! their shape. Each kernel builds a micro-ISA program plus initialised
//! data and returns a ready-to-run [`Emulator`].
//!
//! # Example
//!
//! ```
//! use orinoco_workloads::Workload;
//!
//! let mut emu = Workload::StreamLike.build(7, 1);
//! let trace = emu.run();
//! assert!(trace.len() > 1_000);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use orinoco_isa::{ArchReg, Emulator, InstClass, ProgramBuilder};
use orinoco_util::Rng;

mod kernels;
pub mod multicore;

/// The workload suite (one entry per synthetic SPEC-like kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Single dependent pointer chase over a 4 MiB ring — `mcf`-like
    /// memory-bound behaviour with no MLP.
    McfLike,
    /// Streaming `a[i] = b[i] + c[i]` — prefetcher-friendly, high MLP.
    StreamLike,
    /// Blocked FP matrix multiply — compute-dense with data reuse.
    GemmLike,
    /// Hash-join probe: random gathers with data-dependent branches.
    HashjoinLike,
    /// Four independent pointer chases interleaved — `mcf`-like misses but
    /// with exploitable MLP.
    LinkedlistLike,
    /// Integer compute-dense with well-predicted branches (`exchange2`).
    ExchangeLike,
    /// Branchy interpreter-style dispatch with data-dependent,
    /// hard-to-predict branches (`perlbench`).
    PerlLike,
    /// Integer mixing/shifting over a medium working set with stores
    /// (`xz`).
    XzLike,
    /// FP streaming with stores over a grid (`lbm`).
    LbmLike,
    /// Irregular integer logic with moderate loads and mixed branches
    /// (`deepsjeng`).
    DeepsjengLike,
    /// Three-point FP stencil over a 1-D grid.
    StencilLike,
    /// Long-latency divide chains interleaved with independent loads —
    /// the in-order-commit worst case.
    MixLike,
    /// Dependent pointer chase over an 8 MiB (larger-than-LLC) ring with
    /// nothing but loop bookkeeping between misses — pure memory-latency
    /// bound, the idle-cycle fast-forward stress workload.
    MemlatLike,
}

impl Workload {
    /// Every workload, in reporting order.
    pub const ALL: [Workload; 13] = [
        Workload::McfLike,
        Workload::StreamLike,
        Workload::GemmLike,
        Workload::HashjoinLike,
        Workload::LinkedlistLike,
        Workload::ExchangeLike,
        Workload::PerlLike,
        Workload::XzLike,
        Workload::LbmLike,
        Workload::DeepsjengLike,
        Workload::StencilLike,
        Workload::MixLike,
        Workload::MemlatLike,
    ];

    /// Short name used in figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::McfLike => "mcf_like",
            Workload::StreamLike => "stream_like",
            Workload::GemmLike => "gemm_like",
            Workload::HashjoinLike => "hashjoin_like",
            Workload::LinkedlistLike => "linkedlist_like",
            Workload::ExchangeLike => "exchange_like",
            Workload::PerlLike => "perl_like",
            Workload::XzLike => "xz_like",
            Workload::LbmLike => "lbm_like",
            Workload::DeepsjengLike => "deepsjeng_like",
            Workload::StencilLike => "stencil_like",
            Workload::MixLike => "mix_like",
            Workload::MemlatLike => "memlat_like",
        }
    }

    /// Builds the kernel with deterministic data from `seed`. `scale`
    /// multiplies the iteration count (1 ≈ 100–300k dynamic
    /// instructions).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    #[must_use]
    pub fn build(self, seed: u64, scale: u32) -> Emulator {
        assert!(scale > 0, "scale must be positive");
        let mut rng = Rng::seed_from_u64(seed ^ 0xABCD_EF01_2345_6789);
        match self {
            Workload::McfLike => kernels::pointer_chase(&mut rng, scale, 1),
            Workload::LinkedlistLike => kernels::pointer_chase(&mut rng, scale, 4),
            Workload::StreamLike => kernels::stream(&mut rng, scale),
            Workload::GemmLike => kernels::gemm(&mut rng, scale),
            Workload::HashjoinLike => kernels::hashjoin(&mut rng, scale),
            Workload::ExchangeLike => kernels::exchange(&mut rng, scale),
            Workload::PerlLike => kernels::perl(&mut rng, scale),
            Workload::XzLike => kernels::xz(&mut rng, scale),
            Workload::LbmLike => kernels::lbm(&mut rng, scale),
            Workload::DeepsjengLike => kernels::deepsjeng(&mut rng, scale),
            Workload::StencilLike => kernels::stencil(&mut rng, scale),
            Workload::MixLike => kernels::divmix(&mut rng, scale),
            Workload::MemlatLike => kernels::memlat(&mut rng, scale),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the multi-phase long-run kernel with `outer` phase rounds
/// (~9–10k dynamic instructions per round). Each round cycles through
/// streaming, pointer-chase, compute-chain and branchy-dispatch phases,
/// so whole-program IPC blends four regimes — the validation workload
/// for checkpointed interval sampling. Not part of [`Workload::ALL`]:
/// the 13-kernel suite reproduces the paper's figures and stays as-is.
///
/// # Panics
///
/// Panics if `outer` is zero or exceeds `i64::MAX`.
#[must_use]
pub fn phased_program(seed: u64, outer: u64) -> Emulator {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    kernels::phased(&mut rng, i64::try_from(outer).expect("outer round count overflow"))
}

/// Builds a phased program whose dynamic instruction count is at least
/// `target_insts` (typically within ~2% above it). The per-round length
/// is calibrated by functionally running two short builds, so the call
/// costs ~100k emulated instructions regardless of `target_insts` —
/// 100M+ instruction programs are built in milliseconds.
///
/// # Panics
///
/// Panics if `target_insts` is zero.
#[must_use]
pub fn long_program(seed: u64, target_insts: u64) -> Emulator {
    assert!(target_insts > 0, "target_insts must be positive");
    // Dynamic length is linear in the round count: total = base + r·per.
    // Measure at 4 and 8 rounds to solve for both, then add a 2% margin
    // for the (tiny) data-dependent variance of the dispatch ladder.
    let count = |outer: u64| phased_program(seed, outer).by_ref().count() as u64;
    let (c4, c8) = (count(4), count(8));
    let per_round = (c8 - c4) / 4;
    let padded = target_insts + target_insts / 50;
    let rounds = if padded <= c8 {
        8
    } else {
        8 + (padded - c8).div_ceil(per_round)
    };
    phased_program(seed, rounds)
}

/// Convenience: integer register helper shared by the kernel builders.
pub(crate) fn x(i: u8) -> ArchReg {
    ArchReg::int(i)
}

/// Convenience: FP register helper shared by the kernel builders.
pub(crate) fn f(i: u8) -> ArchReg {
    ArchReg::fp(i)
}

/// Shared builder finaliser: emit `halt`, build, construct the emulator
/// and hand memory to the initialiser.
pub(crate) fn finish(
    mut b: ProgramBuilder,
    mem_bytes: usize,
    init: impl FnOnce(&mut Emulator),
) -> Emulator {
    b.halt();
    let mut emu = Emulator::new(b.build(), mem_bytes);
    init(&mut emu);
    emu
}

/// Class mix of a dynamic trace, for tests and workload characterisation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClassMix {
    /// Total dynamic instructions.
    pub total: u64,
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of branches.
    pub branch: f64,
    /// Fraction of FP operations.
    pub fp: f64,
    /// Fraction of long-latency (div) operations.
    pub div: f64,
}

/// Runs the workload functionally and reports its dynamic class mix.
#[must_use]
pub fn characterize(w: Workload, seed: u64, scale: u32) -> ClassMix {
    let mut emu = w.build(seed, scale);
    let mut mix = ClassMix::default();
    let (mut load, mut store, mut branch, mut fp, mut div) = (0u64, 0u64, 0u64, 0u64, 0u64);
    while let Some(d) = emu.step() {
        mix.total += 1;
        match d.class {
            InstClass::Load => load += 1,
            InstClass::Store => store += 1,
            InstClass::Branch => branch += 1,
            InstClass::FpAlu | InstClass::FpMul => fp += 1,
            InstClass::FpDiv | InstClass::IntDiv => div += 1,
            _ => {}
        }
    }
    let t = mix.total.max(1) as f64;
    mix.load = load as f64 / t;
    mix.store = store as f64 / t;
    mix.branch = branch as f64 / t;
    mix.fp = fp as f64 / t;
    mix.div = div as f64 / t;
    mix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_and_halt() {
        for w in Workload::ALL {
            let mut emu = w.build(1, 1);
            emu.set_step_limit(3_000_000);
            let n = emu.by_ref().count();
            assert!(
                emu.halt_reason() == Some(orinoco_isa::HaltReason::Halted),
                "{w} did not halt cleanly: {:?} after {n}",
                emu.halt_reason()
            );
            assert!(
                (20_000..=2_000_000).contains(&n),
                "{w} dynamic length {n} out of range"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for w in [Workload::McfLike, Workload::PerlLike, Workload::GemmLike] {
            let a = characterize(w, 42, 1);
            let b = characterize(w, 42, 1);
            assert_eq!(a, b, "{w} not deterministic");
        }
    }

    #[test]
    fn seeds_change_data_not_shape() {
        let a = characterize(Workload::HashjoinLike, 1, 1);
        let b = characterize(Workload::HashjoinLike, 2, 1);
        // Same static program: class mix nearly identical even though the
        // data (and thus branch outcomes/addresses) differ.
        assert!((a.load - b.load).abs() < 0.05);
    }

    #[test]
    fn scale_multiplies_length() {
        let a = characterize(Workload::StreamLike, 3, 1);
        let b = characterize(Workload::StreamLike, 3, 2);
        let ratio = b.total as f64 / a.total as f64;
        assert!((1.5..=2.5).contains(&ratio), "scale ratio {ratio}");
    }

    #[test]
    fn memory_bound_kernels_are_load_heavy() {
        for w in [Workload::McfLike, Workload::LinkedlistLike, Workload::MemlatLike] {
            let m = characterize(w, 5, 1);
            assert!(m.load > 0.15, "{w} load fraction {}", m.load);
        }
    }

    #[test]
    fn compute_kernels_have_fp_or_div() {
        assert!(characterize(Workload::GemmLike, 5, 1).fp > 0.15);
        assert!(characterize(Workload::LbmLike, 5, 1).fp > 0.15);
        assert!(characterize(Workload::MixLike, 5, 1).div > 0.01);
    }

    #[test]
    fn branchy_kernels_branch_often() {
        for w in [Workload::PerlLike, Workload::DeepsjengLike] {
            let m = characterize(w, 5, 1);
            assert!(m.branch > 0.10, "{w} branch fraction {}", m.branch);
        }
    }

    #[test]
    fn phased_program_halts_and_scales_linearly() {
        let mut a = phased_program(9, 4);
        let ca = a.by_ref().count();
        assert_eq!(a.halt_reason(), Some(orinoco_isa::HaltReason::Halted));
        let mut b = phased_program(9, 8);
        let cb = b.by_ref().count();
        let per_round = (cb - ca) / 4;
        assert!(
            (8_000..=12_000).contains(&per_round),
            "per-round length {per_round} out of range"
        );
    }

    #[test]
    fn long_program_meets_its_target() {
        for target in [500_000u64, 2_000_000] {
            let mut emu = long_program(3, target);
            let n = emu.by_ref().count() as u64;
            assert_eq!(emu.halt_reason(), Some(orinoco_isa::HaltReason::Halted));
            assert!(n >= target, "long_program({target}) ran only {n}");
            assert!(n <= target + target / 10 + 100_000, "overshoot: {n} for {target}");
        }
    }

    #[test]
    fn long_program_is_deterministic() {
        let a: Vec<_> = long_program(11, 300_000).by_ref().take(5_000).map(|d| d.pc).collect();
        let b: Vec<_> = long_program(11, 300_000).by_ref().take(5_000).map(|d| d.pc).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn phased_phases_cover_behaviour_axes() {
        // The blend should show loads, stores, FP and branches all at once.
        let mut emu = phased_program(5, 8);
        let (mut load, mut store, mut branch, mut fp, mut total) = (0u64, 0, 0, 0, 0u64);
        for d in emu.by_ref() {
            total += 1;
            match d.class {
                InstClass::Load => load += 1,
                InstClass::Store => store += 1,
                InstClass::Branch => branch += 1,
                InstClass::FpAlu | InstClass::FpMul => fp += 1,
                _ => {}
            }
        }
        let t = total as f64;
        assert!(load as f64 / t > 0.08, "load fraction {}", load as f64 / t);
        assert!(store as f64 / t > 0.01);
        assert!(branch as f64 / t > 0.05);
        assert!(fp as f64 / t > 0.01);
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for w in Workload::ALL {
            assert!(seen.insert(w.name()));
            assert_eq!(w.to_string(), w.name());
        }
    }
}
