//! Shared-memory multicore kernels for the coherence layer.
//!
//! Where the [`Workload`](crate::Workload) suite spans the single-core
//! behaviour axes, these kernels span the *cross-core* ones that drive
//! the MESI directory and the lockdown matrix: invalidation ping-pong
//! (true sharing), line bouncing without data races (false sharing),
//! one-way flag-and-payload handoff (producer/consumer) and hot-word
//! pile-ups (lock contention). Each builds one program per core over one
//! shared window; the caller wraps them in `Core`s and a `System`.
//!
//! Every program is a **bounded** loop nest: no spin ever waits on a
//! value another core writes, so each core halts deterministically
//! regardless of interleaving — a requirement for differential and
//! fast-forward-equivalence testing over the same programs.

use crate::x;
use orinoco_isa::{ArchReg, Emulator, ProgramBuilder};
use orinoco_util::Rng;

/// The shared-memory kernel suite (one entry per cross-core traffic
/// pattern).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SharedWorkload {
    /// Every core read-modify-writes the same four words of one line:
    /// maximal invalidation ping-pong, every store a remote-line upgrade.
    TrueSharing,
    /// Each core owns a distinct word of the *same* line: no data
    /// dependence between cores, yet the line bounces on every store.
    FalseSharing,
    /// Core 0 writes payload words then bumps a flag in another line;
    /// the other cores read flag then payload (bounded, no flag spin) —
    /// the message-passing shape that exercises lockdown holds.
    ProducerConsumer,
    /// All cores hammer one lock word (load, claim-store, release-store)
    /// around a short protected-line critical section.
    LockContention,
}

impl SharedWorkload {
    /// Every shared kernel, in reporting order.
    pub const ALL: [SharedWorkload; 4] = [
        SharedWorkload::TrueSharing,
        SharedWorkload::FalseSharing,
        SharedWorkload::ProducerConsumer,
        SharedWorkload::LockContention,
    ];

    /// Short name used in figures and campaign output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SharedWorkload::TrueSharing => "true_sharing",
            SharedWorkload::FalseSharing => "false_sharing",
            SharedWorkload::ProducerConsumer => "producer_consumer",
            SharedWorkload::LockContention => "lock_contention",
        }
    }

    /// Builds one program per core against a shared window at
    /// `shared_base` (64-byte lines; the kernels use the first three
    /// lines). `seed` jitters per-core pacing so the cores do not run in
    /// lockstep; `scale` multiplies the iteration counts.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not in `2..=8` or `scale` is zero.
    #[must_use]
    pub fn build(self, cores: usize, shared_base: u64, seed: u64, scale: u32) -> Vec<Emulator> {
        assert!((2..=8).contains(&cores), "shared kernels need 2–8 cores");
        assert!(scale > 0, "scale must be positive");
        let mut rng = Rng::seed_from_u64(seed ^ 0x5AAD_ED00_C0FF_EE00);
        (0..cores)
            .map(|c| match self {
                SharedWorkload::TrueSharing => true_sharing(shared_base, scale, &mut rng),
                SharedWorkload::FalseSharing => false_sharing(c, shared_base, scale, &mut rng),
                SharedWorkload::ProducerConsumer => {
                    producer_consumer(c, shared_base, scale, &mut rng)
                }
                SharedWorkload::LockContention => {
                    lock_contention(c, shared_base, scale, &mut rng)
                }
            })
            .collect()
    }
}

impl std::fmt::Display for SharedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Memory size covering both the private low window and the shared one.
fn mem_bytes(shared_base: u64) -> usize {
    usize::try_from(shared_base + 0x400)
        .expect("shared window fits usize")
        .max(1 << 16)
        .next_power_of_two()
}

/// Emits `halt` and builds the emulator.
fn seal(mut b: ProgramBuilder, shared_base: u64) -> Emulator {
    b.halt();
    Emulator::new(b.build(), mem_bytes(shared_base))
}

/// A short seed-jittered dependent `addi` run on a scratch register —
/// desynchronises the cores without touching memory.
fn jitter(b: &mut ProgramBuilder, rng: &mut Rng) {
    let t = x(9);
    for _ in 0..rng.next_u64() % 12 {
        b.addi(t, t, 1);
    }
}

fn true_sharing(shared_base: u64, scale: u32, rng: &mut Rng) -> Emulator {
    let mut b = ProgramBuilder::new();
    let (base, ctr, v) = (x(1), x(2), x(4));
    b.li(base, shared_base as i64);
    b.li(ctr, 12 * i64::from(scale));
    let top = b.label();
    b.bind(top);
    // Four read-modify-writes over the words of line 0; each store's value
    // depends on the loaded one, so rf feeds straight into co.
    for w in 0..4i64 {
        b.ld(v, base, w * 8);
        b.addi(v, v, 1);
        b.st(v, base, w * 8);
    }
    jitter(&mut b, rng);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    seal(b, shared_base)
}

fn false_sharing(core: usize, shared_base: u64, scale: u32, rng: &mut Rng) -> Emulator {
    let mut b = ProgramBuilder::new();
    let (base, ctr, v) = (x(1), x(2), x(4));
    let off = (core as i64) * 8; // this core's word of the contended line
    b.li(base, shared_base as i64);
    b.li(v, (core as i64 + 1) * 1000);
    b.li(ctr, 40 * i64::from(scale));
    let top = b.label();
    b.bind(top);
    b.st(v, base, off);
    b.ld(v, base, off);
    b.addi(v, v, 1);
    jitter(&mut b, rng);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    seal(b, shared_base)
}

fn producer_consumer(core: usize, shared_base: u64, scale: u32, rng: &mut Rng) -> Emulator {
    // Payload: the four words of line 1; flag: word 0 of line 2. Rounds
    // are bounded on both sides — the consumers read whatever generation
    // is visible rather than spinning, which keeps halting deterministic
    // while still producing the flag-then-payload access pattern the
    // lockdown matrix exists for.
    let (payload, flag) = (64i64, 128i64);
    let rounds = 10 * i64::from(scale);
    let mut b = ProgramBuilder::new();
    let (base, ctr, v, d) = (x(1), x(2), x(4), x(5));
    b.li(base, shared_base as i64);
    b.li(ctr, rounds);
    let top = b.label();
    b.bind(top);
    if core == 0 {
        // Producer: write the payload words, then publish by bumping the
        // flag (program order gives the TSO W→W guarantee consumers rely
        // on).
        for w in 0..4i64 {
            b.add(v, ctr, ArchReg::ZERO);
            b.st(v, base, payload + w * 8);
        }
        b.st(ctr, base, flag);
    } else {
        // Consumer: read the flag, then the payload — the load→load pair
        // whose ordering unordered commit must not leak.
        b.ld(d, base, flag);
        for w in 0..4i64 {
            b.ld(v, base, payload + w * 8);
        }
    }
    jitter(&mut b, rng);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    seal(b, shared_base)
}

fn lock_contention(core: usize, shared_base: u64, scale: u32, rng: &mut Rng) -> Emulator {
    // Lock word: line 0; protected counter: line 1. The "acquire" is a
    // bounded observe-then-claim (no value-dependent spin — the kernels
    // model the coherence traffic of contention, not mutual exclusion).
    let (lock, data) = (0i64, 64i64);
    let mut b = ProgramBuilder::new();
    let (base, ctr, v, claim) = (x(1), x(2), x(4), x(5));
    b.li(base, shared_base as i64);
    b.li(claim, core as i64 + 1);
    b.li(ctr, 14 * i64::from(scale));
    let top = b.label();
    b.bind(top);
    b.ld(v, base, lock); // observe the holder (upgrade → S)
    b.st(claim, base, lock); // claim (S → M, invalidates everyone)
    b.ld(v, base, data); // critical section: bump the counter
    b.addi(v, v, 1);
    b.st(v, base, data);
    b.st(ArchReg::ZERO, base, lock); // release
    jitter(&mut b, rng);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    seal(b, shared_base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orinoco_isa::HaltReason;

    const BASE: u64 = 0x8000;

    #[test]
    fn every_kernel_builds_and_halts_on_every_core() {
        for w in SharedWorkload::ALL {
            for cores in [2, 4] {
                for (c, mut emu) in w.build(cores, BASE, 11, 1).into_iter().enumerate() {
                    emu.set_step_limit(1_000_000);
                    let n = emu.by_ref().count();
                    assert_eq!(
                        emu.halt_reason(),
                        Some(HaltReason::Halted),
                        "{w} core {c}/{cores} did not halt after {n}"
                    );
                    assert!((30..=20_000).contains(&n), "{w} core {c} length {n}");
                }
            }
        }
    }

    #[test]
    fn every_core_touches_the_shared_window() {
        for w in SharedWorkload::ALL {
            for (c, mut emu) in w.build(2, BASE, 3, 1).into_iter().enumerate() {
                let mut shared = 0u64;
                while let Some(d) = emu.step() {
                    if d.mem_addr.is_some_and(|a| (BASE..BASE + 0x400).contains(&a)) {
                        shared += 1;
                    }
                }
                assert!(shared >= 10, "{w} core {c}: only {shared} shared accesses");
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_jittered_across_seeds() {
        let len = |seed: u64| -> Vec<usize> {
            SharedWorkload::ProducerConsumer
                .build(2, BASE, seed, 1)
                .into_iter()
                .map(|mut e| e.by_ref().count())
                .collect()
        };
        assert_eq!(len(5), len(5), "same seed must rebuild identically");
        assert_ne!(len(5), len(6), "different seeds should jitter the pacing");
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for w in SharedWorkload::ALL {
            assert!(seen.insert(w.name()));
            assert_eq!(w.to_string(), w.name());
        }
    }

    #[test]
    #[should_panic(expected = "2–8 cores")]
    fn single_core_is_rejected() {
        let _ = SharedWorkload::TrueSharing.build(1, BASE, 0, 1);
    }
}
