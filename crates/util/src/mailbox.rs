//! A persistent worker pool with per-worker FIFO mailboxes and a
//! strict-FIFO-per-queue dispatcher — the execution layer of the campaign
//! server (`orinoco-server`).
//!
//! [`pool::parallel_map`](crate::pool::parallel_map) is the right shape
//! for one-shot campaigns: a fixed item slice, scoped workers, ordered
//! merge. A long-running job server needs the opposite: workers that
//! outlive any one batch, jobs that arrive continuously, and an ordering
//! guarantee that holds *per logical queue* while unrelated queues share
//! the machine freely.
//!
//! # Ordering model
//!
//! Every job is submitted to a logical **queue** (a client connection, in
//! the server). A queue is pinned to one worker's mailbox — `queue %
//! workers` — so its jobs run serially on a single consumer, in arrival
//! order, with no cross-worker hand-off that could reorder them. This is
//! the mailbox/dispatcher shape of actor runtimes, chosen deliberately
//! over a shared injection deque with idle-worker stealing: the stolen
//! path is exactly where a LIFO or CAS-retry fallback silently reverses a
//! FIFO batch under contention (the fraktor-rs `SystemQueue` BugBot bug —
//! a failed `compare_exchange` pushed a FIFO chain back onto a LIFO head
//! node by node, reversing the batch). Here there is no fallback path to
//! get wrong: one mailbox, one consumer, `VecDeque` push-back/pop-front
//! under one mutex.
//!
//! Concretely, for two jobs on the same queue, `submit(q, a)` returning
//! before `submit(q, b)` is called guarantees `a` **starts and finishes**
//! before `b` starts, even when workers stall or jobs panic. Jobs on
//! different queues have no ordering relationship. The regression tests
//! in `orinoco-server` hammer this with stalling/panicking jobs at ≥ 8
//! workers.
//!
//! # Panics in jobs
//!
//! A panicking job must not take its mailbox down — the queue behind it
//! still owns a completion order. The worker catches the unwind, counts
//! it (see [`Dispatcher::panics`]) and moves on. The worker context `C`
//! handed to a panicking job may have been left mid-mutation; jobs that
//! mutate `C` non-atomically must do their own `catch_unwind` hygiene
//! (the server's sim jobs discard the poisoned `Fleet` lane — see
//! `Fleet::with_lane` — before letting the panic escape).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A job: runs once on the pinned worker, with access to that worker's
/// long-lived context.
type Job<C> = Box<dyn FnOnce(&mut C) + Send + 'static>;

/// One worker's mailbox: a FIFO of jobs behind a mutex, with a condvar
/// the worker parks on when it runs dry.
struct Mailbox<C> {
    state: Mutex<MailboxState<C>>,
    available: Condvar,
}

struct MailboxState<C> {
    jobs: VecDeque<Job<C>>,
    shutdown: bool,
}

impl<C> Mailbox<C> {
    fn new() -> Self {
        Self {
            state: Mutex::new(MailboxState { jobs: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
        }
    }

    /// Appends a job at the tail and wakes the (single) consumer. The
    /// push happens-before the notified pickup, so a worker that parks
    /// while the queue refills can only ever observe a longer FIFO — it
    /// re-checks `jobs` under the same mutex before parking again, which
    /// is what makes the park/refill race inversion-free.
    fn push(&self, job: Job<C>) {
        let mut st = self.state.lock().expect("mailbox poisoned");
        st.jobs.push_back(job);
        drop(st);
        self.available.notify_one();
    }

    /// Blocks until a job is available (returning it) or shutdown is
    /// signalled with the mailbox drained (returning `None`). Jobs still
    /// queued at shutdown are executed before the worker exits.
    fn pop(&self) -> Option<Job<C>> {
        let mut st = self.state.lock().expect("mailbox poisoned");
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.shutdown {
                return None;
            }
            st = self.available.wait(st).expect("mailbox poisoned");
        }
    }

    fn len(&self) -> usize {
        self.state.lock().expect("mailbox poisoned").jobs.len()
    }

    fn shutdown(&self) {
        self.state.lock().expect("mailbox poisoned").shutdown = true;
        self.available.notify_one();
    }
}

/// A persistent pool of worker threads, each owning a FIFO mailbox and a
/// long-lived context of type `C` (the server stores a warm
/// `orinoco_core::Fleet` per worker). See the module docs for the
/// per-queue ordering guarantee.
pub struct Dispatcher<C: 'static> {
    mailboxes: Vec<Arc<Mailbox<C>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    panics: Arc<AtomicU64>,
}

impl<C: Send + 'static> Dispatcher<C> {
    /// Spawns `workers` worker threads; `make_ctx(worker_index)` builds
    /// each worker's context **on the worker thread**, so `C` itself does
    /// not need to cross threads after construction.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn new(workers: usize, make_ctx: impl Fn(usize) -> C + Send + Sync + 'static) -> Self {
        assert!(workers > 0, "a dispatcher needs at least one worker");
        let mailboxes: Vec<Arc<Mailbox<C>>> =
            (0..workers).map(|_| Arc::new(Mailbox::new())).collect();
        let panics = Arc::new(AtomicU64::new(0));
        let make_ctx = Arc::new(make_ctx);
        let handles = mailboxes
            .iter()
            .enumerate()
            .map(|(idx, mb)| {
                let mb = Arc::clone(mb);
                let panics = Arc::clone(&panics);
                let make_ctx = Arc::clone(&make_ctx);
                std::thread::Builder::new()
                    .name(format!("orinoco-worker-{idx}"))
                    .spawn(move || {
                        let mut ctx = make_ctx(idx);
                        while let Some(job) = mb.pop() {
                            if catch_unwind(AssertUnwindSafe(|| job(&mut ctx))).is_err() {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self { mailboxes, workers: handles, panics }
    }

    /// Number of worker threads (= mailboxes).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.mailboxes.len()
    }

    /// The worker index queue `queue` is pinned to.
    #[must_use]
    pub fn worker_for(&self, queue: u64) -> usize {
        (queue % self.mailboxes.len() as u64) as usize
    }

    /// Enqueues `job` on `queue`. Jobs on the same queue execute — and
    /// therefore complete — in the order their `submit` calls happen;
    /// callers racing on the *same* queue from several threads get
    /// whatever arrival order their own synchronisation produces.
    pub fn submit(&self, queue: u64, job: impl FnOnce(&mut C) + Send + 'static) {
        self.mailboxes[self.worker_for(queue)].push(Box::new(job));
    }

    /// Total jobs queued (not yet picked up) across all mailboxes.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.mailboxes.iter().map(|m| m.len()).sum()
    }

    /// Jobs that panicked (the worker survived and kept its queue going).
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Drains every mailbox (queued jobs still run) and joins the
    /// workers. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        for mb in &self.mailboxes {
            mb.shutdown();
        }
        for h in self.workers.drain(..) {
            h.join().expect("worker thread itself panicked");
        }
    }
}

impl<C: 'static> Drop for Dispatcher<C> {
    fn drop(&mut self) {
        for mb in &self.mailboxes {
            mb.shutdown();
        }
        for h in self.workers.drain(..) {
            // Worker bodies catch job panics, so a join error here means
            // the dispatcher loop itself is broken; surfacing it from a
            // destructor would abort, so settle for best-effort.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn per_queue_fifo_single_worker() {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let mut d: Dispatcher<()> = Dispatcher::new(1, |_| ());
        for i in 0..64u64 {
            let log = Arc::clone(&log);
            d.submit(7, move |()| log.lock().unwrap().push(i));
        }
        d.shutdown();
        assert_eq!(*log.lock().unwrap(), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn queues_pin_to_workers_and_interleave_freely() {
        let mut d: Dispatcher<usize> = Dispatcher::new(4, |idx| idx);
        assert_eq!(d.workers(), 4);
        // Same queue, same worker, every time.
        assert_eq!(d.worker_for(5), d.worker_for(5));
        let seen = Arc::new(StdMutex::new(std::collections::HashMap::new()));
        for q in 0..16u64 {
            for _ in 0..8 {
                let seen = Arc::clone(&seen);
                d.submit(q, move |ctx| {
                    let mut s = seen.lock().unwrap();
                    let w = s.entry(q).or_insert(*ctx);
                    assert_eq!(*w, *ctx, "queue {q} migrated between workers");
                });
            }
        }
        d.shutdown();
        assert_eq!(seen.lock().unwrap().len(), 16);
    }

    #[test]
    fn panicking_job_does_not_break_the_queue() {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let mut d: Dispatcher<()> = Dispatcher::new(2, |_| ());
        {
            let log = Arc::clone(&log);
            d.submit(0, move |()| log.lock().unwrap().push(1));
        }
        d.submit(0, |()| panic!("job blew up"));
        {
            let log = Arc::clone(&log);
            d.submit(0, move |()| log.lock().unwrap().push(3));
        }
        d.shutdown();
        assert_eq!(*log.lock().unwrap(), vec![1, 3]);
        assert_eq!(d.panics(), 1);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let count = Arc::new(AtomicU64::new(0));
        let mut d: Dispatcher<()> = Dispatcher::new(2, |_| ());
        for q in 0..32u64 {
            let count = Arc::clone(&count);
            d.submit(q, move |()| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        d.shutdown();
        assert_eq!(count.load(Ordering::Relaxed), 32);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn context_persists_across_jobs() {
        let out = Arc::new(AtomicU64::new(0));
        let mut d: Dispatcher<u64> = Dispatcher::new(1, |_| 0u64);
        for _ in 0..10 {
            d.submit(0, |acc| *acc += 1);
        }
        {
            let out = Arc::clone(&out);
            d.submit(0, move |acc| out.store(*acc, Ordering::Relaxed));
        }
        d.shutdown();
        assert_eq!(out.load(Ordering::Relaxed), 10);
    }
}
