//! A minimal work-stealing-free scoped thread pool.
//!
//! Parallelism in this workspace must never change observable output: the
//! verif campaigns and the `results/` sweeps are contractually byte-identical
//! whether they run on 1 thread or 64. [`parallel_map`] guarantees this by
//! construction — workers *claim* item indices from a shared atomic counter
//! (self-scheduling, no stealing, no channels) and tag every result with the
//! index it came from; after all workers join, results are merged back into
//! input order. Interleaving affects only wall-clock time, never the output.
//!
//! Built on `std::thread::scope` so borrowed inputs work without `Arc` and
//! without any external crate.
//!
//! # Ordering audit: idle-worker pickup
//!
//! Audited (PR 9) for the fraktor-rs `SystemQueue` failure mode, where a
//! contended CAS fallback on the idle-pickup path re-enqueued a FIFO batch
//! in reverse. `parallel_map` is immune *by construction*, for two
//! separate reasons:
//!
//! 1. There is no idle/park/refill path at all. The item set is fixed
//!    before any worker starts; workers self-schedule by `fetch_add` on a
//!    shared cursor and exit when it passes the end. A worker is never
//!    idle while work remains, so there is no pickup step whose arrival
//!    order could race a refill.
//! 2. Output order never depends on completion order anyway. Every result
//!    is tagged with the input index its worker claimed, and the final
//!    merge sorts by that tag — even an adversarial scheduler that runs
//!    claims in reverse produces byte-identical output.
//!
//! The `stalled_workers_never_invert_order` test below pins this: workers
//! stall pseudo-randomly mid-item (forcing maximal claim/completion
//! reordering) and the output must still equal the serial map. Long-lived
//! queues that *do* refill live in [`crate::mailbox`], which sidesteps the
//! bug class differently: each queue has a single consumer, so there is no
//! contended multi-consumer pickup to get wrong.
//!
//! # Example
//!
//! ```
//! use orinoco_util::pool::parallel_map;
//!
//! let items = vec![1u64, 2, 3, 4, 5];
//! let out = parallel_map(4, &items, |_, &x| x * x);
//! assert_eq!(out, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the `ORINOCO_JOBS`
/// environment variable if set, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("ORINOCO_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item of `items` using up to `jobs` worker threads
/// and returns the results **in input order**, regardless of scheduling.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` (or a single item) the
/// map runs inline on the calling thread — the parallel path produces the
/// exact same output, it only gets there faster.
///
/// Determinism contract: `f` must be a pure function of its arguments (plus
/// state it synchronises itself); under that contract the returned vector
/// is byte-identical across any thread count.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                local
            }));
        }
        for h in handles {
            // A worker panic propagates: losing results silently would
            // violate the determinism contract.
            tagged.extend(h.join().expect("parallel_map worker panicked"));
        }
    });

    // Ordered merge: sort by the input index each result was tagged with.
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        for jobs in [1, 2, 4, 7] {
            let par = parallel_map(jobs, &items, |_, &x| x.wrapping_mul(2654435761));
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn passes_input_index() {
        let items = vec!["a", "b", "c"];
        let out = parallel_map(3, &items, |i, &s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = parallel_map(8, &[], |_, &x: &u32| x);
        assert!(none.is_empty());
        assert_eq!(parallel_map(8, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    /// Pinned regression for the fraktor-rs BugBot scenario (see the
    /// module-level ordering audit): force workers to stall at
    /// pseudo-random points so items complete far out of claim order —
    /// the merged output must still be in input order, on every run.
    #[test]
    fn stalled_workers_never_invert_order() {
        let items: Vec<u64> = (0..512).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9E37_79B9)).collect();
        for round in 0..4u64 {
            let par = parallel_map(8, &items, |i, &x| {
                // Deterministic per-(round, item) stall: some items sleep,
                // later-claimed items overtake them freely.
                let h = (i as u64 ^ (round << 32)).wrapping_mul(0x2545_F491_4F6C_DD1D);
                if h.is_multiple_of(5) {
                    std::thread::sleep(std::time::Duration::from_micros(h % 300));
                }
                x.wrapping_mul(0x9E37_79B9)
            });
            assert_eq!(par, serial, "round={round}");
        }
    }
}
