//! A minimal work-stealing-free scoped thread pool.
//!
//! Parallelism in this workspace must never change observable output: the
//! verif campaigns and the `results/` sweeps are contractually byte-identical
//! whether they run on 1 thread or 64. [`parallel_map`] guarantees this by
//! construction — workers *claim* item indices from a shared atomic counter
//! (self-scheduling, no stealing, no channels) and tag every result with the
//! index it came from; after all workers join, results are merged back into
//! input order. Interleaving affects only wall-clock time, never the output.
//!
//! Built on `std::thread::scope` so borrowed inputs work without `Arc` and
//! without any external crate.
//!
//! # Ordering audit: idle-worker pickup
//!
//! Audited (PR 9) for the fraktor-rs `SystemQueue` failure mode, where a
//! contended CAS fallback on the idle-pickup path re-enqueued a FIFO batch
//! in reverse. `parallel_map` is immune *by construction*, for two
//! separate reasons:
//!
//! 1. There is no idle/park/refill path at all. The item set is fixed
//!    before any worker starts; workers self-schedule by `fetch_add` on a
//!    shared cursor and exit when it passes the end. A worker is never
//!    idle while work remains, so there is no pickup step whose arrival
//!    order could race a refill.
//! 2. Output order never depends on completion order anyway. Every result
//!    is tagged with the input index its worker claimed, and the final
//!    merge sorts by that tag — even an adversarial scheduler that runs
//!    claims in reverse produces byte-identical output.
//!
//! The `stalled_workers_never_invert_order` test below pins this: workers
//! stall pseudo-randomly mid-item (forcing maximal claim/completion
//! reordering) and the output must still equal the serial map. Long-lived
//! queues that *do* refill live in [`crate::mailbox`], which sidesteps the
//! bug class differently: each queue has a single consumer, so there is no
//! contended multi-consumer pickup to get wrong.
//!
//! # Example
//!
//! ```
//! use orinoco_util::pool::parallel_map;
//!
//! let items = vec![1u64, 2, 3, 4, 5];
//! let out = parallel_map(4, &items, |_, &x| x * x);
//! assert_eq!(out, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the `ORINOCO_JOBS`
/// environment variable if set, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("ORINOCO_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item of `items` using up to `jobs` worker threads
/// and returns the results **in input order**, regardless of scheduling.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` (or a single item) the
/// map runs inline on the calling thread — the parallel path produces the
/// exact same output, it only gets there faster.
///
/// Determinism contract: `f` must be a pure function of its arguments (plus
/// state it synchronises itself); under that contract the returned vector
/// is byte-identical across any thread count.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                local
            }));
        }
        for h in handles {
            // A worker panic propagates: losing results silently would
            // violate the determinism contract.
            tagged.extend(h.join().expect("parallel_map worker panicked"));
        }
    });

    // Ordered merge: sort by the input index each result was tagged with.
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Streams items from a serial producer through up to `jobs` workers and
/// returns the results **in production order**, regardless of scheduling.
///
/// Where [`parallel_map`] needs the whole item set up front,
/// `ordered_pipeline_map` overlaps *production* with *consumption*: the
/// producer runs on the calling thread (it may borrow mutable state — a
/// master emulator, a file reader) and hands each item into a bounded
/// queue; workers pull, transform, and tag results with the production
/// index; the final merge sorts by that tag. The bound (`capacity`)
/// backpressures the producer so at most `capacity` items are buffered —
/// the knob that keeps memory flat when items are large (checkpoints,
/// warm-state images).
///
/// `init` builds one long-lived state value per worker (a warm core pool,
/// a scratch buffer); `work` receives `(&mut state, index, item)`. With
/// `jobs <= 1` everything runs inline on the calling thread, producing
/// the exact same output.
///
/// Determinism contract: as with [`parallel_map`], `work` must be a pure
/// function of its arguments (plus state it synchronises itself) and
/// `init` must not make results depend on the worker id; under that
/// contract the returned vector is byte-identical across any thread
/// count.
///
/// Ordering audit (the fraktor-rs bug class): the queue has multiple
/// consumers, but output order never depends on pop order — every result
/// carries its production index and the merge sorts by it. A worker panic
/// propagates on join (losing results silently would break determinism);
/// callers that want per-item retry catch panics inside `work`.
///
/// # Panics
///
/// Panics if a worker panics out of `work` (after all workers are
/// joined), re-raising the first panic payload.
pub fn ordered_pipeline_map<T, R, S>(
    jobs: usize,
    capacity: usize,
    init: impl Fn(usize) -> S + Sync,
    mut produce: impl FnMut() -> Option<T>,
    work: impl Fn(&mut S, usize, T) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let jobs = jobs.max(1);
    if jobs == 1 {
        let mut state = init(0);
        let mut out = Vec::new();
        let mut i = 0usize;
        while let Some(item) = produce() {
            out.push(work(&mut state, i, item));
            i += 1;
        }
        return out;
    }
    let capacity = capacity.max(1);

    use std::collections::VecDeque;
    use std::sync::{Condvar, Mutex};
    struct Shared<T> {
        queue: Mutex<(VecDeque<(usize, T)>, bool)>,
        /// Signalled when an item is pushed or production ends.
        not_empty: Condvar,
        /// Signalled when an item is popped.
        not_full: Condvar,
    }
    let shared = Shared {
        queue: Mutex::new((VecDeque::with_capacity(capacity), false)),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    };

    let mut tagged: Vec<(usize, R)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for worker in 0..jobs {
            let shared = &shared;
            let init = &init;
            let work = &work;
            handles.push(scope.spawn(move || {
                let mut state = init(worker);
                let mut local: Vec<(usize, R)> = Vec::new();
                let mut guard = shared.queue.lock().expect("pipeline queue poisoned");
                loop {
                    if let Some((i, item)) = guard.0.pop_front() {
                        shared.not_full.notify_one();
                        drop(guard);
                        local.push((i, work(&mut state, i, item)));
                        guard = shared.queue.lock().expect("pipeline queue poisoned");
                    } else if guard.1 {
                        break;
                    } else {
                        guard = shared
                            .not_empty
                            .wait(guard)
                            .expect("pipeline queue poisoned");
                    }
                }
                local
            }));
        }
        // Production runs on the calling thread, overlapped with the
        // workers; `produce` is called outside the lock so a slow
        // producer never blocks consumers (and vice versa, up to the
        // capacity bound).
        let mut i = 0usize;
        loop {
            let item = produce();
            let mut guard = shared.queue.lock().expect("pipeline queue poisoned");
            match item {
                Some(item) => {
                    while guard.0.len() >= capacity {
                        guard = shared.not_full.wait(guard).expect("pipeline queue poisoned");
                    }
                    guard.0.push_back((i, item));
                    i += 1;
                    drop(guard);
                    shared.not_empty.notify_one();
                }
                None => {
                    guard.1 = true;
                    drop(guard);
                    shared.not_empty.notify_all();
                    break;
                }
            }
        }
        for h in handles {
            tagged.extend(h.join().expect("ordered_pipeline_map worker panicked"));
        }
    });

    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        for jobs in [1, 2, 4, 7] {
            let par = parallel_map(jobs, &items, |_, &x| x.wrapping_mul(2654435761));
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn passes_input_index() {
        let items = vec!["a", "b", "c"];
        let out = parallel_map(3, &items, |i, &s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = parallel_map(8, &[], |_, &x: &u32| x);
        assert!(none.is_empty());
        assert_eq!(parallel_map(8, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn pipeline_matches_serial_for_any_jobs_and_capacity() {
        let serial: Vec<u64> = (0..300u64).map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
        for jobs in [1, 2, 4, 8] {
            for capacity in [1, 2, 5, 64] {
                let mut next = 0u64;
                let out = ordered_pipeline_map(
                    jobs,
                    capacity,
                    |_| (),
                    || {
                        if next < 300 {
                            next += 1;
                            Some(next - 1)
                        } else {
                            None
                        }
                    },
                    |(), _, x| x.wrapping_mul(0x9E37_79B9),
                );
                assert_eq!(out, serial, "jobs={jobs} capacity={capacity}");
            }
        }
    }

    #[test]
    fn pipeline_empty_producer() {
        let out: Vec<u32> = ordered_pipeline_map(4, 2, |_| (), || None::<u32>, |(), _, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pipeline_reuses_per_worker_state() {
        // Each worker counts how many items it processed; the counts must
        // sum to the item count (state lives across items, one per worker).
        use std::sync::atomic::AtomicUsize;
        let per_worker: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let mut next = 0u32;
        let out = ordered_pipeline_map(
            4,
            3,
            |w| w,
            || {
                if next < 97 {
                    next += 1;
                    Some(next - 1)
                } else {
                    None
                }
            },
            |w, i, x| {
                per_worker[*w].fetch_add(1, Ordering::Relaxed);
                assert_eq!(i as u32, x);
                x
            },
        );
        assert_eq!(out, (0..97).collect::<Vec<u32>>());
        let total: usize = per_worker.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 97);
    }

    /// Pipeline twin of `stalled_workers_never_invert_order`: stalls force
    /// completion order to diverge wildly from production order and the
    /// bounded queue forces the producer to block mid-stream; the merge
    /// must still return production order.
    #[test]
    fn pipeline_stalled_workers_never_invert_order() {
        let serial: Vec<u64> = (0..256u64).map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
        for round in 0..3u64 {
            let mut next = 0u64;
            let out = ordered_pipeline_map(
                8,
                4,
                |_| (),
                || {
                    if next < 256 {
                        next += 1;
                        Some(next - 1)
                    } else {
                        None
                    }
                },
                |(), i, x| {
                    let h = (i as u64 ^ (round << 32)).wrapping_mul(0x2545_F491_4F6C_DD1D);
                    if h.is_multiple_of(5) {
                        std::thread::sleep(std::time::Duration::from_micros(h % 300));
                    }
                    x.wrapping_mul(0x9E37_79B9)
                },
            );
            assert_eq!(out, serial, "round={round}");
        }
    }

    /// Pinned regression for the fraktor-rs BugBot scenario (see the
    /// module-level ordering audit): force workers to stall at
    /// pseudo-random points so items complete far out of claim order —
    /// the merged output must still be in input order, on every run.
    #[test]
    fn stalled_workers_never_invert_order() {
        let items: Vec<u64> = (0..512).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9E37_79B9)).collect();
        for round in 0..4u64 {
            let par = parallel_map(8, &items, |i, &x| {
                // Deterministic per-(round, item) stall: some items sleep,
                // later-claimed items overtake them freely.
                let h = (i as u64 ^ (round << 32)).wrapping_mul(0x2545_F491_4F6C_DD1D);
                if h.is_multiple_of(5) {
                    std::thread::sleep(std::time::Duration::from_micros(h % 300));
                }
                x.wrapping_mul(0x9E37_79B9)
            });
            assert_eq!(par, serial, "round={round}");
        }
    }
}
