//! A counting global allocator for allocation-regression tests and
//! benchmark reports.
//!
//! The simulator's hot loop is contractually allocation-free in steady
//! state (see DESIGN.md §"Performance engineering"); this module provides
//! the measurement half of that contract. Installing [`CountingAlloc`] as
//! the `#[global_allocator]` of a test or bench binary makes every heap
//! allocation tick a process-wide counter that [`alloc_count`] reads:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: orinoco_util::alloc_counter::CountingAlloc =
//!     orinoco_util::alloc_counter::CountingAlloc;
//!
//! let before = orinoco_util::alloc_counter::alloc_count();
//! hot_loop();
//! assert_eq!(orinoco_util::alloc_counter::alloc_count(), before);
//! ```
//!
//! The counters are always compiled in (they are two relaxed atomics — far
//! below measurement noise) but only advance in binaries that actually
//! install the allocator, so the library itself imposes no policy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static TRAP: AtomicBool = AtomicBool::new(false);

/// A `GlobalAlloc` that forwards to [`System`] and counts every
/// allocation and reallocation (frees are not counted — the contract under
/// test is "no new heap traffic", and a free implies a prior allocation).
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the counters are relaxed atomics
// with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRAP.swap(false, Ordering::SeqCst) {
            panic!("heap allocation of {} bytes while trapped", layout.size());
        }
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRAP.swap(false, Ordering::SeqCst) {
            panic!("heap reallocation to {new_size} bytes while trapped");
        }
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Arms (or disarms) the allocation trap: the **next** allocation or
/// reallocation panics with a backtrace pointing at the allocation site,
/// then the trap disarms itself (so the panic machinery can allocate
/// freely). A debugging aid for hunting stray allocations that
/// [`alloc_count`] detects — not for use in committed assertions.
pub fn trap_on_next_alloc(enable: bool) {
    TRAP.store(enable, Ordering::SeqCst);
}

/// Total heap allocations (including reallocations) observed so far.
/// Always zero unless the binary installed [`CountingAlloc`].
#[must_use]
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested by those allocations.
#[must_use]
pub fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}
