//! Deterministic utilities shared across the Orinoco workspace: a seeded
//! PRNG with a `rand`-flavoured API, a miniature property-test harness,
//! and a wall-clock micro-benchmark timer.
//!
//! The workspace must build with **no network access and no external
//! crates**; this crate replaces the `rand`, `proptest` and `criterion`
//! dependencies that the seed tree declared but could never resolve. All
//! randomness is seeded explicitly — there is deliberately no constructor
//! reading ambient entropy, so every test, fuzz run and workload build is
//! reproducible from a `u64`.
//!
//! # Example
//!
//! ```
//! use orinoco_util::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.gen_range(0..100u64);
//! let b = Rng::seed_from_u64(42).gen_range(0..100u64);
//! assert_eq!(a, b);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alloc_counter;
pub mod bench;
pub mod mailbox;
pub mod pool;
pub mod prop;

use std::ops::Range;

/// Splits a 64-bit seed into a well-mixed stream (SplitMix64); used to
/// initialise the xoshiro state so that nearby seeds diverge immediately.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256\*\* PRNG.
///
/// Not cryptographic; statistically strong enough for workload data,
/// fuzzing and property tests. The API mirrors the subset of `rand`
/// the workspace used, so call sites port with a `use` swap.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden xoshiro state; splitmix64
        // cannot produce four zeros from any seed, but keep the guard.
        if s == [0; 4] {
            s[0] = 0x0DDB_1A5E_5BAD_5EED;
        }
        Self { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value of a primitive integer (or bool) type.
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform value in `range` (half-open, `start < end` required).
    ///
    /// Uses a simple modulo reduction: the bias is below 2⁻³² for every
    /// span the workspace uses and irrelevant for test-data generation.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Picks a uniformly random element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Types producible uniformly from the raw 64-bit stream ([`Rng::gen`]).
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng(rng: &mut Rng) -> Self;
}

macro_rules! impl_from_rng {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_rng(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng!(u64, i64, u32, i32, u16, i16, u8, i8, usize);

impl FromRng for bool {
    fn from_rng(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range ([`Rng::gen_range`]).
pub trait SampleUniform: Sized {
    /// Draws one value in `range`.
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_unsigned!(u64, u32, u16, u8, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_signed!(i64, i32, i16, i8);

/// `rand::seq::SliceRandom`-style extension so `data.shuffle(&mut rng)`
/// call sites keep their shape.
pub trait SliceRandom {
    /// Shuffles the slice in place.
    fn shuffle(&mut self, rng: &mut Rng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut Rng) {
        rng.shuffle(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::seed_from_u64(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-50..50i64);
            assert!((-50..50).contains(&v));
            let u = r.gen_range(3..17usize);
            assert!((3..17).contains(&u));
        }
        // Extreme span used by the workload builders.
        for _ in 0..1_000 {
            let v = r.gen_range(1..i64::MAX);
            assert!(v >= 1);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}
