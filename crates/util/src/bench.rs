//! Minimal wall-clock micro-benchmark runner replacing `criterion` for
//! the `harness = false` bench targets: warm up, sample, report median
//! and spread on stdout, and optionally collect the rows into a
//! machine-readable [`Report`] (`BENCH_*.json`) so every PR has a perf
//! trajectory to compare against.
//!
//! Setting `ORINOCO_BENCH_QUICK=1` shrinks sample counts and per-sample
//! targets for CI smoke runs; the JSON schema is identical either way.

use crate::alloc_counter;
use std::hint::black_box;
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// One measured benchmark row, as written to `BENCH_*.json`.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Benchmark name, e.g. `pipeline/orinoco_full/gemm_like`.
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Fastest sample (ns/iter).
    pub spread_lo: f64,
    /// Slowest sample (ns/iter).
    pub spread_hi: f64,
    /// Heap allocations per iteration (0 unless the bench binary installs
    /// [`crate::alloc_counter::CountingAlloc`]).
    pub allocs_per_iter: f64,
    /// Simulated cycles per wall-clock second, for pipeline benches.
    pub cycles_per_sec: Option<f64>,
    /// Simulated instructions per wall-clock second, for pipeline benches.
    pub instrs_per_sec: Option<f64>,
}

impl BenchEntry {
    /// Derives throughput fields from the work one iteration performed:
    /// `cycles` simulated cycles and `instrs` simulated instructions.
    #[must_use]
    pub fn with_throughput(mut self, cycles: u64, instrs: u64) -> Self {
        let secs = self.ns_per_iter / 1e9;
        if secs > 0.0 {
            self.cycles_per_sec = Some(cycles as f64 / secs);
            self.instrs_per_sec = Some(instrs as f64 / secs);
        }
        self
    }
}

/// Collects [`BenchEntry`] rows and serialises them as `BENCH_*.json`
/// (hand-rolled JSON — the workspace has no serde — one entry object per
/// line so downstream tooling can parse it line-by-line).
#[derive(Default)]
pub struct Report {
    entries: Vec<BenchEntry>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a measured row.
    pub fn push(&mut self, entry: BenchEntry) {
        self.entries.push(entry);
    }

    /// The rows collected so far.
    #[must_use]
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Writes the report to `path` in the `orinoco-bench-v1` schema.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"schema\": \"orinoco-bench-v1\",")?;
        writeln!(f, "  \"entries\": [")?;
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            writeln!(f, "    {}{comma}", entry_json(e))?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        Ok(())
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_owned()
    }
}

fn entry_json(e: &BenchEntry) -> String {
    let opt = |v: Option<f64>| v.map_or_else(|| "null".to_owned(), json_num);
    format!(
        "{{\"name\": \"{}\", \"ns_per_iter\": {}, \"spread_lo\": {}, \
         \"spread_hi\": {}, \"allocs_per_iter\": {}, \"cycles_per_sec\": {}, \
         \"instrs_per_sec\": {}}}",
        e.name,
        json_num(e.ns_per_iter),
        json_num(e.spread_lo),
        json_num(e.spread_hi),
        json_num(e.allocs_per_iter),
        opt(e.cycles_per_sec),
        opt(e.instrs_per_sec),
    )
}

/// One benchmark group; prints a header on creation and aligned rows per
/// [`Bench::run`] call.
pub struct Bench {
    samples: usize,
    min_iters: u64,
    target: Duration,
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

/// Where a `BENCH_*.json` artefact should be written: the directory named
/// by `ORINOCO_BENCH_OUT` when set, else the workspace root (so the
/// baseline file can be checked in next to the sources) — **unless** the
/// run is an `ORINOCO_BENCH_QUICK` smoke run, in which case the default
/// diverts to `target/bench-quick/` instead. Quick-mode numbers are
/// measured with 3 shrunk samples and are not comparable to full-mode
/// baselines, so letting them land on the checked-in `BENCH_*.json` used
/// to silently clobber real baselines with garbage; now a quick run only
/// touches the repo root when the caller explicitly points
/// `ORINOCO_BENCH_OUT` there.
#[must_use]
pub fn out_path(file: &str) -> std::path::PathBuf {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    match std::env::var_os("ORINOCO_BENCH_OUT") {
        Some(dir) => std::path::PathBuf::from(dir).join(file),
        None if quick_mode() => {
            let dir = root.join("target").join("bench-quick");
            let _ = std::fs::create_dir_all(&dir);
            dir.join(file)
        }
        None => root.join(file),
    }
}

/// `true` if `ORINOCO_BENCH_QUICK` requests a reduced-sample smoke run.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var_os("ORINOCO_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

impl Bench {
    /// Runner with 15 samples of ≥10 ms (or ≥16 iterations) each. Under
    /// `ORINOCO_BENCH_QUICK` this drops to 3 samples of ≥2 ms for CI.
    #[must_use]
    pub fn new() -> Self {
        if quick_mode() {
            Self {
                samples: 3,
                min_iters: 4,
                target: Duration::from_millis(2),
            }
        } else {
            Self {
                samples: 15,
                min_iters: 16,
                target: Duration::from_millis(10),
            }
        }
    }

    /// Overrides the sample count (e.g. for slow whole-pipeline runs).
    /// Ignored in quick mode, which always uses the minimum of 3.
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        if !quick_mode() {
            self.samples = n.max(3);
        }
        self
    }

    /// Raises the per-sample time target (e.g. for scheduling-latency
    /// entries whose per-iteration cost only stabilises once a sample
    /// spans many wakeups). Unlike [`Bench::samples`] this applies in
    /// quick mode too: a 2 ms sample of a ~20 µs queue round trip is
    /// dominated by cold-start scheduling and reads up to 2x slower than
    /// the steady state the checked-in baselines record.
    #[must_use]
    pub fn min_sample_time(mut self, target: Duration) -> Self {
        self.target = self.target.max(target);
        self
    }

    /// Times `f`, printing `name`, the median per-iteration time, and the
    /// min–max spread across samples. Returns the median in nanoseconds.
    pub fn run<T>(&self, name: &str, f: impl FnMut() -> T) -> f64 {
        self.run_entry(name, f).ns_per_iter
    }

    /// Like [`Bench::run`], but returns the full measured row (including
    /// allocations per iteration when the binary installs the counting
    /// allocator) for collection into a [`Report`].
    pub fn run_entry<T>(&self, name: &str, mut f: impl FnMut() -> T) -> BenchEntry {
        // Calibrate: how many iterations fill the per-sample target?
        let mut iters = self.min_iters;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.target || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 2).max((iters as f64 * 1.5) as u64);
        }
        let allocs_before = alloc_counter::alloc_count();
        let mut alloc_iters = 0u64;
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                alloc_iters += iters;
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        let allocs_per_iter =
            (alloc_counter::alloc_count() - allocs_before) as f64 / alloc_iters as f64;
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
        println!(
            "{name:<44} {:>12}/iter  (spread {} .. {}, {iters} iters/sample)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
        );
        BenchEntry {
            name: name.to_owned(),
            ns_per_iter: median,
            spread_lo: lo,
            spread_hi: hi,
            allocs_per_iter,
            cycles_per_sec: None,
            instrs_per_sec: None,
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_returns_positive_median() {
        let b = Bench::new().samples(3);
        let median = b.run("noop_sum", || (0..100u64).sum::<u64>());
        assert!(median > 0.0);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
    }

    #[test]
    fn entry_json_is_one_line_with_all_keys() {
        let e = BenchEntry {
            name: "group/kernel".into(),
            ns_per_iter: 123.456,
            spread_lo: 100.0,
            spread_hi: 150.0,
            allocs_per_iter: 0.0,
            cycles_per_sec: None,
            instrs_per_sec: Some(1e6),
        }
        .with_throughput(2_000, 1_000);
        let line = entry_json(&e);
        assert!(!line.contains('\n'));
        for key in [
            "\"name\"",
            "\"ns_per_iter\"",
            "\"spread_lo\"",
            "\"spread_hi\"",
            "\"allocs_per_iter\"",
            "\"cycles_per_sec\"",
            "\"instrs_per_sec\"",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        // with_throughput derives both rates from ns_per_iter
        assert!(e.cycles_per_sec.is_some() && e.instrs_per_sec.is_some());
    }

    #[test]
    fn quick_mode_diverts_default_out_path_from_repo_root() {
        // Hold the env mutations in one test so they cannot race each
        // other; restore everything on exit.
        let prev_quick = std::env::var_os("ORINOCO_BENCH_QUICK");
        let prev_out = std::env::var_os("ORINOCO_BENCH_OUT");
        std::env::remove_var("ORINOCO_BENCH_OUT");

        std::env::remove_var("ORINOCO_BENCH_QUICK");
        let full = out_path("BENCH_test.json");
        assert!(!full.components().any(|c| c.as_os_str() == "bench-quick"));

        std::env::set_var("ORINOCO_BENCH_QUICK", "1");
        let quick = out_path("BENCH_test.json");
        assert!(
            quick.components().any(|c| c.as_os_str() == "bench-quick"),
            "quick-mode default must not be the checked-in baseline: {}",
            quick.display()
        );

        // An explicit ORINOCO_BENCH_OUT always wins, quick or not.
        std::env::set_var("ORINOCO_BENCH_OUT", "/tmp/somewhere");
        assert_eq!(
            out_path("BENCH_test.json"),
            std::path::Path::new("/tmp/somewhere").join("BENCH_test.json")
        );

        match prev_quick {
            Some(v) => std::env::set_var("ORINOCO_BENCH_QUICK", v),
            None => std::env::remove_var("ORINOCO_BENCH_QUICK"),
        }
        match prev_out {
            Some(v) => std::env::set_var("ORINOCO_BENCH_OUT", v),
            None => std::env::remove_var("ORINOCO_BENCH_OUT"),
        }
    }

    #[test]
    fn report_roundtrips_through_file() {
        let mut r = Report::new();
        r.push(BenchEntry {
            name: "a/b".into(),
            ns_per_iter: 1.0,
            spread_lo: 1.0,
            spread_hi: 1.0,
            allocs_per_iter: 2.0,
            cycles_per_sec: None,
            instrs_per_sec: None,
        });
        let path = std::env::temp_dir().join("orinoco_bench_report_test.json");
        r.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("orinoco-bench-v1"));
        assert!(text.contains("\"name\": \"a/b\""));
    }
}
