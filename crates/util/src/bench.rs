//! Minimal wall-clock micro-benchmark runner replacing `criterion` for
//! the `harness = false` bench targets: warm up, sample, report median
//! and spread on stdout. No statistics beyond what a human needs to
//! compare two kernels by eye.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark group; prints a header on creation and aligned rows per
/// [`Bench::run`] call.
pub struct Bench {
    samples: usize,
    min_iters: u64,
    target: Duration,
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

impl Bench {
    /// Runner with 15 samples of ≥10 ms (or ≥16 iterations) each.
    #[must_use]
    pub fn new() -> Self {
        Self {
            samples: 15,
            min_iters: 16,
            target: Duration::from_millis(10),
        }
    }

    /// Overrides the sample count (e.g. for slow whole-pipeline runs).
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(3);
        self
    }

    /// Times `f`, printing `name`, the median per-iteration time, and the
    /// min–max spread across samples. Returns the median in nanoseconds.
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) -> f64 {
        // Calibrate: how many iterations fill the per-sample target?
        let mut iters = self.min_iters;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.target || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 2).max((iters as f64 * 1.5) as u64);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
        println!(
            "{name:<44} {:>12}/iter  (spread {} .. {}, {iters} iters/sample)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
        );
        median
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_returns_positive_median() {
        let b = Bench::new().samples(3);
        let median = b.run("noop_sum", || (0..100u64).sum::<u64>());
        assert!(median > 0.0);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
    }
}
