//! Miniature property-test harness: run a check over many deterministic
//! random cases and report the failing case's seed so it replays exactly.
//!
//! This replaces the `proptest` dependency. It deliberately does *not*
//! shrink — the matrix properties it serves are cheap enough that the
//! failing seed plus the case index is a sufficient repro artifact (the
//! verif crate has its own structural shrinker for whole programs).

use crate::Rng;

/// Default number of cases per property, matching proptest's default.
pub const DEFAULT_CASES: u32 = 256;

/// Runs `body` for `cases` deterministic cases derived from `seed`.
///
/// Each case gets its own [`Rng`] (seeded from `seed` and the case index)
/// so a failure is reproduced by the printed per-case seed alone.
///
/// # Panics
///
/// Re-raises the body's panic, prefixed with the property name and the
/// replay seed.
pub fn forall(name: &str, seed: u64, cases: u32, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let case_seed = seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::seed_from_u64(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (replay: case seed {case_seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// [`forall`] with [`DEFAULT_CASES`] cases.
pub fn check(name: &str, seed: u64, body: impl FnMut(&mut Rng)) {
    forall(name, seed, DEFAULT_CASES, body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0;
        forall("count", 1, 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let caught = std::panic::catch_unwind(|| {
            forall("boom", 2, 8, |rng| {
                let v = rng.gen_range(0..100u64);
                assert!(v < 1_000); // passes
                if v % 2 < 2 {
                    panic!("always fails");
                }
            });
        });
        assert!(caught.is_err());
    }
}
