//! A simple integer histogram for occupancy and latency distributions.

/// Histogram over `u64` samples with unit-width buckets up to a cap.
///
/// # Examples
///
/// ```
/// use orinoco_stats::Histogram;
///
/// let mut h = Histogram::new(16);
/// for v in [1, 1, 2, 30] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket(1), 2);
/// assert_eq!(h.overflow(), 1); // 30 lands past the cap
/// assert_eq!(h.mean(), (1.0 + 1.0 + 2.0 + 30.0) / 4.0);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `cap` unit buckets.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "need at least one bucket");
        Self {
            buckets: vec![0; cap],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, value: u64) {
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Records `value` as `n` identical samples (bulk aggregation for
    /// fast-forwarded cycle runs). Equivalent to calling
    /// [`Histogram::record`] `n` times; a no-op when `n` is zero so `max`
    /// is never tainted by a zero-weight value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += n,
            None => self.overflow += n,
        }
        self.count += n;
        self.sum += value * n;
        self.max = self.max.max(value);
    }

    /// Resets every counter in place, keeping the bucket allocation.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.overflow = 0;
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples in bucket `value`.
    #[must_use]
    pub fn bucket(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// Samples beyond the bucket cap.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fraction of samples at or above `value` (overflow counts as above
    /// everything in range).
    #[must_use]
    pub fn fraction_at_least(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let in_range: u64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(i, _)| (i as u64) >= value)
            .map(|(_, &c)| c)
            .sum();
        (in_range + self.overflow) as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_at_least(0), 0.0);
    }

    #[test]
    fn records_and_aggregates() {
        let mut h = Histogram::new(8);
        for v in [0, 1, 1, 7, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(7), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn fraction_at_least_includes_overflow() {
        let mut h = Histogram::new(4);
        for v in [0, 2, 3, 100] {
            h.record(v);
        }
        assert!((h.fraction_at_least(2) - 0.75).abs() < 1e-9);
        assert!((h.fraction_at_least(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_cap_panics() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new(4);
        let mut naive = Histogram::new(4);
        bulk.record_n(2, 5);
        bulk.record_n(9, 3);
        bulk.record_n(1, 0); // no-op
        for _ in 0..5 {
            naive.record(2);
        }
        for _ in 0..3 {
            naive.record(9);
        }
        assert_eq!(bulk.count(), naive.count());
        assert_eq!(bulk.bucket(2), naive.bucket(2));
        assert_eq!(bulk.overflow(), naive.overflow());
        assert_eq!(bulk.max(), naive.max());
        assert_eq!(bulk.mean(), naive.mean());
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = Histogram::new(4);
        h.record(1);
        h.record(100);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.bucket(1), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
