//! Statistics utilities for the Orinoco simulator: histograms, top-down
//! stall attribution, aggregation (geometric means, speedups) and the
//! plain-text table renderer used by every figure/table harness.
//!
//! # Example
//!
//! ```
//! use orinoco_stats::{geomean, improvement_pct};
//!
//! let speedups = [1.065, 1.136, 1.148];
//! let agg = geomean(&speedups);
//! assert!(agg > 1.1);
//! assert!(improvement_pct(agg, 1.0) > 10.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod histogram;
mod stall;
mod summary;
mod table;

pub use histogram::Histogram;
pub use stall::{Resource, StallBreakdown, StallCause, StallTaxonomy};
pub use summary::{geomean, improvement_pct, mean, speedup};
pub use table::{Align, TextTable};
