//! Aggregation helpers: means, geometric means and speedups.

/// Arithmetic mean (0.0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean, the conventional aggregate for per-benchmark speedups
/// (0.0 for an empty slice).
///
/// # Panics
///
/// Panics if any value is non-positive.
///
/// # Examples
///
/// ```
/// use orinoco_stats::geomean;
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Relative speedup of `new` over `base` as a factor (1.0 = no change).
///
/// # Panics
///
/// Panics if `base` is not positive.
#[must_use]
pub fn speedup(new: f64, base: f64) -> f64 {
    assert!(base > 0.0, "baseline must be positive");
    new / base
}

/// Speedup expressed as a percentage improvement (e.g. `14.8` for +14.8%).
///
/// # Panics
///
/// Panics if `base` is not positive.
#[must_use]
pub fn improvement_pct(new: f64, base: f64) -> f64 {
    (speedup(new, base) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_below_arithmetic_mean() {
        let v = [1.0, 10.0, 100.0];
        assert!(geomean(&v) < mean(&v));
    }

    #[test]
    fn speedup_and_pct() {
        assert!((speedup(1.148, 1.0) - 1.148).abs() < 1e-12);
        assert!((improvement_pct(1.148, 1.0) - 14.8).abs() < 1e-9);
        assert!((improvement_pct(0.9, 1.0) + 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "baseline must be positive")]
    fn speedup_rejects_zero_base() {
        let _ = speedup(1.0, 0.0);
    }
}
