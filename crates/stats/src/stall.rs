//! Top-down stall attribution: which back-end resource clogged dispatch.
//!
//! The paper's §6.2 argues in these terms — "67% of ROB exhaustion is
//! unclogged, ... LQ is unclogged by 55% and REG is now barely clogged" —
//! so the simulator attributes every dispatch-blocked cycle to the first
//! exhausted resource.

use std::fmt;

/// A back-end resource whose exhaustion can block dispatch (a "full window
/// stall").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Reorder buffer entries.
    Rob,
    /// Instruction queue entries.
    Iq,
    /// Load queue entries.
    Lq,
    /// Store queue entries.
    Sq,
    /// Physical registers.
    RegFile,
}

impl Resource {
    /// All resources, in reporting order.
    pub const ALL: [Resource; 5] = [
        Resource::Rob,
        Resource::Iq,
        Resource::Lq,
        Resource::Sq,
        Resource::RegFile,
    ];

    fn idx(self) -> usize {
        match self {
            Resource::Rob => 0,
            Resource::Iq => 1,
            Resource::Lq => 2,
            Resource::Sq => 3,
            Resource::RegFile => 4,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Rob => "ROB",
            Resource::Iq => "IQ",
            Resource::Lq => "LQ",
            Resource::Sq => "SQ",
            Resource::RegFile => "REG",
        };
        f.write_str(s)
    }
}

/// Per-resource stall-cycle counters.
///
/// # Examples
///
/// ```
/// use orinoco_stats::{Resource, StallBreakdown};
///
/// let mut s = StallBreakdown::default();
/// s.record(Resource::Rob);
/// s.record(Resource::Rob);
/// s.record(Resource::Lq);
/// assert_eq!(s.count(Resource::Rob), 2);
/// assert_eq!(s.full_window_stalls(), 3);
/// assert!((s.fraction(Resource::Rob) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    counts: [u64; 5],
}

impl StallBreakdown {
    /// Records one stalled cycle attributed to `resource`.
    pub fn record(&mut self, resource: Resource) {
        self.counts[resource.idx()] += 1;
    }

    /// Records `n` stalled cycles attributed to `resource` (aggregation).
    pub fn record_n(&mut self, resource: Resource, n: u64) {
        self.counts[resource.idx()] += n;
    }

    /// Stall cycles attributed to `resource`.
    #[must_use]
    pub fn count(&self, resource: Resource) -> u64 {
        self.counts[resource.idx()]
    }

    /// Total full-window stall cycles.
    #[must_use]
    pub fn full_window_stalls(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of all stall cycles attributed to `resource` (0.0 when
    /// there are no stalls).
    #[must_use]
    pub fn fraction(&self, resource: Resource) -> f64 {
        let total = self.full_window_stalls();
        if total == 0 {
            0.0
        } else {
            self.count(resource) as f64 / total as f64
        }
    }

    /// Relative reduction of stalls attributed to `resource` versus a
    /// baseline breakdown: `1 - new/old` (the paper's "X% unclogged").
    /// Returns 0.0 when the baseline had no such stalls.
    #[must_use]
    pub fn unclog_vs(&self, baseline: &StallBreakdown, resource: Resource) -> f64 {
        let old = baseline.count(resource);
        if old == 0 {
            0.0
        } else {
            1.0 - self.count(resource) as f64 / old as f64
        }
    }
}

impl fmt::Display for StallBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stalls{{")?;
        for (i, r) in Resource::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}:{}", self.count(*r))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut s = StallBreakdown::default();
        for _ in 0..5 {
            s.record(Resource::Iq);
        }
        s.record(Resource::RegFile);
        assert_eq!(s.count(Resource::Iq), 5);
        assert_eq!(s.count(Resource::Rob), 0);
        assert_eq!(s.full_window_stalls(), 6);
    }

    #[test]
    fn fractions() {
        let s = StallBreakdown::default();
        assert_eq!(s.fraction(Resource::Rob), 0.0);
        let mut s = StallBreakdown::default();
        s.record(Resource::Sq);
        assert_eq!(s.fraction(Resource::Sq), 1.0);
    }

    #[test]
    fn unclog_computation() {
        let mut base = StallBreakdown::default();
        for _ in 0..100 {
            base.record(Resource::Rob);
        }
        let mut new = StallBreakdown::default();
        for _ in 0..33 {
            new.record(Resource::Rob);
        }
        assert!((new.unclog_vs(&base, Resource::Rob) - 0.67).abs() < 1e-12);
        assert_eq!(new.unclog_vs(&base, Resource::Lq), 0.0);
    }

    #[test]
    fn display_contains_all_resources() {
        let s = StallBreakdown::default();
        let text = s.to_string();
        for r in Resource::ALL {
            assert!(text.contains(&r.to_string()));
        }
    }
}
