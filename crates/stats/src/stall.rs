//! Top-down stall attribution: which back-end resource clogged dispatch.
//!
//! The paper's §6.2 argues in these terms — "67% of ROB exhaustion is
//! unclogged, ... LQ is unclogged by 55% and REG is now barely clogged" —
//! so the simulator attributes every dispatch-blocked cycle to the first
//! exhausted resource.

use crate::table::TextTable;
use std::fmt;

/// A back-end resource whose exhaustion can block dispatch (a "full window
/// stall").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Reorder buffer entries.
    Rob,
    /// Instruction queue entries.
    Iq,
    /// Load queue entries.
    Lq,
    /// Store queue entries.
    Sq,
    /// Physical registers.
    RegFile,
}

impl Resource {
    /// All resources, in reporting order.
    pub const ALL: [Resource; 5] = [
        Resource::Rob,
        Resource::Iq,
        Resource::Lq,
        Resource::Sq,
        Resource::RegFile,
    ];

    fn idx(self) -> usize {
        match self {
            Resource::Rob => 0,
            Resource::Iq => 1,
            Resource::Lq => 2,
            Resource::Sq => 3,
            Resource::RegFile => 4,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Rob => "ROB",
            Resource::Iq => "IQ",
            Resource::Lq => "LQ",
            Resource::Sq => "SQ",
            Resource::RegFile => "REG",
        };
        f.write_str(s)
    }
}

/// Per-resource stall-cycle counters.
///
/// # Examples
///
/// ```
/// use orinoco_stats::{Resource, StallBreakdown};
///
/// let mut s = StallBreakdown::default();
/// s.record(Resource::Rob);
/// s.record(Resource::Rob);
/// s.record(Resource::Lq);
/// assert_eq!(s.count(Resource::Rob), 2);
/// assert_eq!(s.full_window_stalls(), 3);
/// assert!((s.fraction(Resource::Rob) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    counts: [u64; 5],
}

impl StallBreakdown {
    /// Records one stalled cycle attributed to `resource`.
    pub fn record(&mut self, resource: Resource) {
        self.counts[resource.idx()] += 1;
    }

    /// Records `n` stalled cycles attributed to `resource` (aggregation).
    pub fn record_n(&mut self, resource: Resource, n: u64) {
        self.counts[resource.idx()] += n;
    }

    /// Stall cycles attributed to `resource`.
    #[must_use]
    pub fn count(&self, resource: Resource) -> u64 {
        self.counts[resource.idx()]
    }

    /// Total full-window stall cycles.
    #[must_use]
    pub fn full_window_stalls(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of all stall cycles attributed to `resource` (0.0 when
    /// there are no stalls).
    #[must_use]
    pub fn fraction(&self, resource: Resource) -> f64 {
        let total = self.full_window_stalls();
        if total == 0 {
            0.0
        } else {
            self.count(resource) as f64 / total as f64
        }
    }

    /// Relative reduction of stalls attributed to `resource` versus a
    /// baseline breakdown: `1 - new/old` (the paper's "X% unclogged").
    /// Returns 0.0 when the baseline had no such stalls.
    #[must_use]
    pub fn unclog_vs(&self, baseline: &StallBreakdown, resource: Resource) -> f64 {
        let old = baseline.count(resource);
        if old == 0 {
            0.0
        } else {
            1.0 - self.count(resource) as f64 / old as f64
        }
    }
}

impl fmt::Display for StallBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stalls{{")?;
        for (i, r) in Resource::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}:{}", self.count(*r))?;
        }
        write!(f, "}}")
    }
}

/// Why a cycle made no commit progress — the cycle-level stall taxonomy
/// recorded by the trace layer's per-cycle attribution pass.
///
/// Unlike [`StallBreakdown`] (which only attributes *dispatch*-blocked
/// cycles to the first exhausted resource), this taxonomy classifies every
/// zero-commit cycle, including the commit-side reasons that are unique to
/// the Orinoco design: a completed head still waiting for its `SPEC` bit
/// to clear, and a machine sitting inside a lockdown-protected window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallCause {
    /// No instruction anywhere in the window: the frontend has not
    /// delivered (redirect penalty, fetch stall, frontend pipe fill).
    FrontendEmpty,
    /// Dispatch blocked on ROB entries while commit made no progress.
    RobFull,
    /// Dispatch blocked on IQ entries while commit made no progress.
    IqFull,
    /// Dispatch blocked on LQ entries while commit made no progress.
    LqFull,
    /// Dispatch blocked on SQ entries while commit made no progress.
    SqFull,
    /// Dispatch blocked on physical registers while commit made no
    /// progress.
    RegFileFull,
    /// Instructions are waiting in the IQ but none is ready to issue.
    NoReady,
    /// The ROB head has completed but its `SPEC` bit is still set, so no
    /// commit policy may retire it yet.
    CommitBlockedBySpec,
    /// Progress is gated by the lockdown machinery: either the Lockdown
    /// Table is out of rows (an unordered load grant was withheld), or the
    /// machine is waiting out a lockdown-protected window (older
    /// non-performed loads pinning active lockdowns).
    LockdownHeld,
    /// None of the above: instructions are simply in flight (execution or
    /// memory latency) and the head has not completed.
    ExecPending,
}

impl StallCause {
    /// All causes, in reporting order.
    pub const ALL: [StallCause; 10] = [
        StallCause::FrontendEmpty,
        StallCause::RobFull,
        StallCause::IqFull,
        StallCause::LqFull,
        StallCause::SqFull,
        StallCause::RegFileFull,
        StallCause::NoReady,
        StallCause::CommitBlockedBySpec,
        StallCause::LockdownHeld,
        StallCause::ExecPending,
    ];

    /// Dense index of this cause (stable; used by the binary trace
    /// encoding).
    #[must_use]
    pub fn idx(self) -> usize {
        match self {
            StallCause::FrontendEmpty => 0,
            StallCause::RobFull => 1,
            StallCause::IqFull => 2,
            StallCause::LqFull => 3,
            StallCause::SqFull => 4,
            StallCause::RegFileFull => 5,
            StallCause::NoReady => 6,
            StallCause::CommitBlockedBySpec => 7,
            StallCause::LockdownHeld => 8,
            StallCause::ExecPending => 9,
        }
    }

    /// Inverse of [`StallCause::idx`]; `None` for out-of-range values
    /// (a corrupt binary trace).
    #[must_use]
    pub fn from_idx(idx: usize) -> Option<StallCause> {
        StallCause::ALL.get(idx).copied()
    }

    /// The full-window-stall cause corresponding to an exhausted dispatch
    /// resource.
    #[must_use]
    pub fn from_resource(resource: Resource) -> StallCause {
        match resource {
            Resource::Rob => StallCause::RobFull,
            Resource::Iq => StallCause::IqFull,
            Resource::Lq => StallCause::LqFull,
            Resource::Sq => StallCause::SqFull,
            Resource::RegFile => StallCause::RegFileFull,
        }
    }

    /// Kebab-case label, as emitted in JSONL traces.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::FrontendEmpty => "frontend-empty",
            StallCause::RobFull => "rob-full",
            StallCause::IqFull => "iq-full",
            StallCause::LqFull => "lq-full",
            StallCause::SqFull => "sq-full",
            StallCause::RegFileFull => "regfile-full",
            StallCause::NoReady => "no-ready",
            StallCause::CommitBlockedBySpec => "commit-blocked-by-spec",
            StallCause::LockdownHeld => "lockdown-held",
            StallCause::ExecPending => "exec-pending",
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-cause counters over every zero-commit cycle of a run.
///
/// # Examples
///
/// ```
/// use orinoco_stats::{StallCause, StallTaxonomy};
///
/// let mut t = StallTaxonomy::default();
/// t.record(StallCause::CommitBlockedBySpec);
/// t.record(StallCause::CommitBlockedBySpec);
/// t.record(StallCause::FrontendEmpty);
/// assert_eq!(t.count(StallCause::CommitBlockedBySpec), 2);
/// assert_eq!(t.total(), 3);
/// let table = t.table(10);
/// assert!(table.to_string().contains("commit-blocked-by-spec"));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallTaxonomy {
    counts: [u64; 10],
}

impl StallTaxonomy {
    /// Records one zero-commit cycle attributed to `cause`.
    pub fn record(&mut self, cause: StallCause) {
        self.counts[cause.idx()] += 1;
    }

    /// Records `n` zero-commit cycles attributed to `cause` (bulk
    /// attribution for fast-forwarded idle runs).
    pub fn record_n(&mut self, cause: StallCause, n: u64) {
        self.counts[cause.idx()] += n;
    }

    /// Cycles attributed to `cause`.
    #[must_use]
    pub fn count(&self, cause: StallCause) -> u64 {
        self.counts[cause.idx()]
    }

    /// Total attributed (zero-commit) cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of attributed cycles with this cause (0.0 when none).
    #[must_use]
    pub fn fraction(&self, cause: StallCause) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(cause) as f64 / total as f64
        }
    }

    /// Renders the taxonomy as a table: cause, cycles, share of stall
    /// cycles, and share of all `cycles` in the run.
    #[must_use]
    pub fn table(&self, cycles: u64) -> TextTable {
        let mut t = TextTable::new(vec!["stall cause", "cycles", "% of stalls", "% of run"]);
        for cause in StallCause::ALL {
            let n = self.count(cause);
            if n == 0 {
                continue;
            }
            let of_run = if cycles == 0 {
                0.0
            } else {
                100.0 * n as f64 / cycles as f64
            };
            t.row(vec![
                cause.label().to_string(),
                n.to_string(),
                format!("{:.1}", 100.0 * self.fraction(cause)),
                format!("{of_run:.1}"),
            ]);
        }
        t
    }
}

impl fmt::Display for StallTaxonomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stall-cycles{{")?;
        let mut first = true;
        for c in StallCause::ALL {
            if self.count(c) == 0 {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{c}:{}", self.count(c))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut s = StallBreakdown::default();
        for _ in 0..5 {
            s.record(Resource::Iq);
        }
        s.record(Resource::RegFile);
        assert_eq!(s.count(Resource::Iq), 5);
        assert_eq!(s.count(Resource::Rob), 0);
        assert_eq!(s.full_window_stalls(), 6);
    }

    #[test]
    fn fractions() {
        let s = StallBreakdown::default();
        assert_eq!(s.fraction(Resource::Rob), 0.0);
        let mut s = StallBreakdown::default();
        s.record(Resource::Sq);
        assert_eq!(s.fraction(Resource::Sq), 1.0);
    }

    #[test]
    fn unclog_computation() {
        let mut base = StallBreakdown::default();
        for _ in 0..100 {
            base.record(Resource::Rob);
        }
        let mut new = StallBreakdown::default();
        for _ in 0..33 {
            new.record(Resource::Rob);
        }
        assert!((new.unclog_vs(&base, Resource::Rob) - 0.67).abs() < 1e-12);
        assert_eq!(new.unclog_vs(&base, Resource::Lq), 0.0);
    }

    #[test]
    fn display_contains_all_resources() {
        let s = StallBreakdown::default();
        let text = s.to_string();
        for r in Resource::ALL {
            assert!(text.contains(&r.to_string()));
        }
    }

    #[test]
    fn stall_cause_index_round_trips() {
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
            assert_eq!(StallCause::from_idx(i), Some(*c));
        }
        assert_eq!(StallCause::from_idx(StallCause::ALL.len()), None);
    }

    #[test]
    fn stall_cause_labels_are_unique_kebab_case() {
        let mut seen = std::collections::HashSet::new();
        for c in StallCause::ALL {
            let l = c.label();
            assert!(seen.insert(l), "duplicate label {l}");
            assert!(l
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch == '-'));
        }
    }

    #[test]
    fn taxonomy_record_n_matches_repeated_record() {
        let mut bulk = StallTaxonomy::default();
        let mut naive = StallTaxonomy::default();
        bulk.record_n(StallCause::ExecPending, 7);
        bulk.record_n(StallCause::NoReady, 0);
        for _ in 0..7 {
            naive.record(StallCause::ExecPending);
        }
        assert_eq!(bulk, naive);
    }

    #[test]
    fn taxonomy_counts_and_table() {
        let mut t = StallTaxonomy::default();
        for r in Resource::ALL {
            t.record(StallCause::from_resource(r));
        }
        t.record(StallCause::LockdownHeld);
        t.record(StallCause::LockdownHeld);
        assert_eq!(t.total(), 7);
        assert!((t.fraction(StallCause::LockdownHeld) - 2.0 / 7.0).abs() < 1e-12);
        let rendered = t.table(70).to_string();
        assert!(rendered.contains("lockdown-held"));
        assert!(rendered.contains("rob-full"));
        // Zero-count causes are omitted from the table.
        assert!(!rendered.contains("frontend-empty"));
    }
}
