//! Plain-text table rendering for the experiment harness — every figure
//! and table binary prints its rows through this formatter.

use std::fmt;

/// Cell alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A text table with a header row.
///
/// # Examples
///
/// ```
/// use orinoco_stats::TextTable;
///
/// let mut t = TextTable::new(vec!["bench", "IPC"]);
/// t.row(vec!["mcf_like".into(), "1.23".into()]);
/// let s = t.to_string();
/// assert!(s.contains("bench"));
/// assert!(s.contains("1.23"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (override with
    /// [`TextTable::set_aligns`]).
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; header.len()];
        if let Some(a) = aligns.first_mut() {
            *a = Align::Left;
        }
        Self { header, rows: Vec::new(), aligns }
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the header width.
    pub fn set_aligns(&mut self, aligns: Vec<Align>) {
        assert_eq!(aligns.len(), self.header.len(), "alignment arity mismatch");
        self.aligns = aligns;
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Convenience: a row from a label and float values with `prec`
    /// decimals.
    ///
    /// # Panics
    ///
    /// Panics if the arity (1 + values) differs from the header width.
    pub fn row_f64(&mut self, label: &str, values: &[f64], prec: usize) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.prec$}")));
        self.row(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<w$}", cells[i], w = widths[i])?,
                    Align::Right => write!(f, "{:>w$}", cells[i], w = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "v"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "22.5".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with('-'));
        // numbers right-aligned in a fixed-width column
        assert!(lines[2].ends_with(" 1.0"));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    fn row_f64_formats() {
        let mut t = TextTable::new(vec!["b", "x", "y"]);
        t.row_f64("k", &[1.23456, 2.0], 2);
        assert!(t.to_string().contains("1.23"));
        assert!(t.to_string().contains("2.00"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
