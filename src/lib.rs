//! # Orinoco
//!
//! A full reproduction of **"Orinoco: Ordered Issue and Unordered Commit
//! with Non-Collapsible Queues"** (Chen et al., ISCA 2023): the matrix
//! schedulers, a from-scratch cycle-level out-of-order core with every
//! baseline the paper evaluates, the synthetic workload suite, and an
//! analytical model of the processing-in-memory circuit implementation.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`matrix`] | `orinoco-matrix` | age/commit/disambiguation/lockdown/wakeup matrices |
//! | [`isa`] | `orinoco-isa` | micro-ISA, program builder, functional emulator |
//! | [`frontend`] | `orinoco-frontend` | TAGE/gshare/bimodal predictors, BTB, RAS |
//! | [`mem`] | `orinoco-mem` | 3-level cache hierarchy, MSHRs, prefetcher |
//! | [`core`] | `orinoco-core` | the cycle-level OoO pipeline and all policies |
//! | [`circuit`] | `orinoco-circuit` | PIM 8T-SRAM analytical area/latency/power model |
//! | [`workloads`] | `orinoco-workloads` | 12 SPEC-like synthetic kernels |
//! | [`stats`] | `orinoco-stats` | histograms, stall attribution, reporting |
//!
//! # Quickstart
//!
//! ```
//! use orinoco::core::{CommitKind, Core, CoreConfig, SchedulerKind};
//! use orinoco::workloads::Workload;
//!
//! // Simulate a small hash-join on the paper's Base core with the full
//! // Orinoco design (ordered issue + unordered commit).
//! let emu = Workload::HashjoinLike.build(42, 1);
//! let cfg = CoreConfig::base()
//!     .with_scheduler(SchedulerKind::Orinoco)
//!     .with_commit(CommitKind::Orinoco);
//! let mut core = Core::new(emu, cfg);
//! let stats = core.run(100_000_000);
//! println!("IPC = {:.3}", stats.ipc());
//! assert!(stats.ipc() > 0.1);
//! ```

#![warn(missing_docs)]

pub use orinoco_circuit as circuit;
pub use orinoco_core as core;
pub use orinoco_frontend as frontend;
pub use orinoco_isa as isa;
pub use orinoco_matrix as matrix;
pub use orinoco_mem as mem;
pub use orinoco_stats as stats;
pub use orinoco_workloads as workloads;
