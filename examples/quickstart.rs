//! Quickstart: simulate one workload on the paper's Base core, first with
//! the baseline design (AGE scheduler + in-order commit), then with the
//! full Orinoco design (bit-count ordered issue + unordered commit), and
//! compare.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use orinoco::core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco::workloads::Workload;

fn main() {
    let workload = Workload::MixLike;
    println!("workload: {workload} (long-latency divides + independent loads)");
    println!();

    // Baseline: classic age matrix (single oldest prioritised), in-order
    // commit — the configuration the paper's Figure 15 normalises to.
    let mut emu = workload.build(42, 1);
    emu.set_step_limit(100_000);
    let mut base_core = Core::new(emu, CoreConfig::base());
    let baseline = base_core.run(1_000_000_000).clone();

    // Orinoco: ordered issue via the bit count encoding + non-speculative
    // out-of-order commit over non-collapsible queues.
    let mut emu = workload.build(42, 1);
    emu.set_step_limit(100_000);
    let cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco);
    let mut orinoco_core = Core::new(emu, cfg);
    let orinoco = orinoco_core.run(1_000_000_000).clone();

    println!("                       baseline      Orinoco");
    println!(
        "IPC                    {:8.3}     {:8.3}",
        baseline.ipc(),
        orinoco.ipc()
    );
    println!(
        "cycles                 {:8}     {:8}",
        baseline.cycles, orinoco.cycles
    );
    println!(
        "avg ROB occupancy      {:8.1}     {:8.1}",
        baseline.avg_rob_occupancy(),
        orinoco.avg_rob_occupancy()
    );
    println!(
        "full-window stalls     {:8}     {:8}",
        baseline.dispatch_stalls.full_window_stalls(),
        orinoco.dispatch_stalls.full_window_stalls()
    );
    println!(
        "out-of-order commits   {:8}     {:8}",
        baseline.ooo_commits, orinoco.ooo_commits
    );
    println!();
    println!(
        "speedup: {:+.1}%",
        (orinoco.ipc() / baseline.ipc() - 1.0) * 100.0
    );
}
