//! Policy explorer: sweep one workload across every issue scheduler and
//! commit policy and print the IPC matrix — a small interactive version of
//! Figures 14 and 15.
//!
//! Run with (workload name optional):
//! ```text
//! cargo run --release --example policy_explorer -- hashjoin_like
//! ```

use orinoco::core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco::stats::TextTable;
use orinoco::workloads::Workload;

fn simulate(w: Workload, cfg: CoreConfig) -> f64 {
    let mut emu = w.build(7, 1);
    emu.set_step_limit(60_000);
    let mut core = Core::new(emu, cfg);
    core.run(1_000_000_000).ipc()
}

fn main() {
    let wanted = std::env::args().nth(1);
    let workload = match wanted {
        Some(name) => Workload::ALL
            .into_iter()
            .find(|w| w.name() == name)
            .unwrap_or_else(|| {
                eprintln!("unknown workload {name}; choices:");
                for w in Workload::ALL {
                    eprintln!("  {w}");
                }
                std::process::exit(1);
            }),
        None => Workload::XzLike,
    };
    println!("IPC of {workload} on the Base core, scheduler x commit policy:");
    println!();
    let schedulers = [
        SchedulerKind::Rand,
        SchedulerKind::Circ,
        SchedulerKind::Age,
        SchedulerKind::Mult,
        SchedulerKind::Orinoco,
    ];
    let commits = [CommitKind::InOrder, CommitKind::Orinoco, CommitKind::Vb];
    let mut header = vec!["scheduler".to_string()];
    header.extend(commits.iter().map(|c| c.label().to_string()));
    let mut t = TextTable::new(header);
    for s in schedulers {
        let ipcs: Vec<f64> = commits
            .iter()
            .map(|&c| {
                simulate(
                    workload,
                    CoreConfig::base().with_scheduler(s).with_commit(c),
                )
            })
            .collect();
        t.row_f64(s.label(), &ipcs, 3);
    }
    println!("{t}");
    println!("Rows: issue schedulers (§6.2 Fig. 14). Columns: commit policies (Fig. 15).");
    println!("The bottom-right cell is the full Orinoco-or-better design point.");
}
