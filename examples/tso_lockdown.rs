//! TSO lockdown in action (§3.3): while a gather workload commits loads
//! out of order past older non-performed loads, a second "core" fires
//! invalidations at its addresses. Acknowledgements to lines under
//! lockdown are withheld until the older loads perform, so the reordering
//! can never be observed — non-speculative load→load reordering under
//! Total Store Order with a non-collapsible LQ.
//!
//! Run with:
//! ```text
//! cargo run --release --example tso_lockdown
//! ```

use orinoco::core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco::workloads::Workload;

fn main() {
    let mut emu = Workload::LinkedlistLike.build(3, 1);
    emu.set_step_limit(60_000);
    let cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco);
    let mut core = Core::new(emu, cfg);

    let mut rng: u64 = 0x1234_5678_9ABC_DEF1;
    let mut invalidations = 0u64;
    let mut withheld = 0u64;
    let mut max_lockdowns = 0usize;
    while !core.finished() && core.cycle() < 50_000_000 {
        core.step();
        max_lockdowns = max_lockdowns.max(core.active_lockdowns());
        // A remote core invalidates every ~64 cycles: usually a random
        // node line, sometimes (contended sharing) one that is currently
        // locked down.
        if core.cycle().is_multiple_of(64) {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let addr = if rng.is_multiple_of(4) {
                core.any_locked_line().unwrap_or((rng % (4 << 20)) & !63)
            } else {
                (rng % (4 << 20)) & !63
            };
            invalidations += 1;
            if !core.inject_invalidation(addr) {
                withheld += 1;
            }
        }
    }
    let stats = core.stats();
    println!("committed {} instructions at IPC {:.3}", stats.committed, {
        stats.committed as f64 / core.cycle() as f64
    });
    println!("out-of-order commits: {}", stats.ooo_commits);
    println!("peak simultaneous lockdowns: {max_lockdowns}");
    println!(
        "remote invalidations: {invalidations}, acknowledgements withheld by lockdowns: {withheld}"
    );
    println!();
    println!(
        "Each withheld acknowledgement covered a committed-but-unordered load;\n\
         it was released automatically when every older load performed, so the\n\
         remote core never observed a load-load reordering (TSO preserved)."
    );
}
