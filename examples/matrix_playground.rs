//! Matrix playground: a guided tour of the paper's data structures using
//! the library API directly — the age matrix with bit-count select, the
//! merged commit scheduler, the memory disambiguation matrix and the
//! lockdown table — narrating each hardware event.
//!
//! Run with:
//! ```text
//! cargo run --example matrix_playground
//! ```

use orinoco::matrix::{
    AgeMatrix, BitVec64, CommitScheduler, LockdownTable, MemDisambigMatrix,
};

fn main() {
    ordered_issue();
    unordered_commit();
    disambiguation();
    lockdown();
}

fn ordered_issue() {
    println!("== Ordered issue with the age matrix (§3.1) ==");
    let mut age = AgeMatrix::new(8);
    // Random (non-collapsible) allocation: dispatch order 5, 2, 7, 0.
    for slot in [5, 2, 7, 0] {
        age.dispatch(slot);
        println!("  dispatch -> IQ entry {slot}");
    }
    let ready = BitVec64::from_indices(8, [0, 2, 7]);
    println!("  ready (BID) = entries {:?}", ready.iter_ones().collect::<Vec<_>>());
    // Classic AGE grants only the single oldest ready instruction...
    println!(
        "  classic AGE grant      = {:?}",
        age.select_single_oldest(&ready)
    );
    // ...the bit count encoding grants the IW oldest at once.
    println!(
        "  bit-count grant (IW=2) = {:?}  <- two oldest ready, in age order",
        age.select_oldest(&ready, 2)
    );
    println!();
}

fn unordered_commit() {
    println!("== Unordered commit with the merged SPEC scheme (§3.2) ==");
    let mut rob = CommitScheduler::new(8);
    rob.dispatch(0, false); // long-latency divide: safe but slow
    rob.dispatch(1, true); //  a branch, unresolved
    rob.dispatch(2, false); // an add
    println!("  ROB: [0]=div (executing) [1]=branch (SPEC) [2]=add");
    let mut completed = BitVec64::new(8);
    completed.set(2); // the add finished
    println!(
        "  add completed; grants = {:?} (blocked: older branch is speculative)",
        rob.commit_grants(&completed, 4)
    );
    rob.mark_safe(1); // branch resolves correctly
    println!(
        "  branch resolves; grants = {:?} <- the add commits past the divide",
        rob.commit_grants(&completed, 4)
    );
    println!();
}

fn disambiguation() {
    println!("== Memory disambiguation matrix (§3.3) ==");
    let mut mdm = MemDisambigMatrix::new(4, 4);
    // A store with an unresolved address sits in SQ slot 0; a younger load
    // speculates past it from LQ slot 2.
    mdm.load_issue(2, &BitVec64::from_indices(4, [0]));
    println!(
        "  load issues past unresolved store; non-speculative? {}",
        mdm.load_nonspeculative(2)
    );
    // The store resolves to a different address: no conflict.
    mdm.store_resolved(0, &BitVec64::from_indices(4, [2]));
    println!(
        "  store resolves (no alias); non-speculative? {} <- SPEC bit clears, load may commit early",
        mdm.load_nonspeculative(2)
    );
    println!();
}

fn lockdown() {
    println!("== TSO lockdown table (§3.3) ==");
    let mut ldt = LockdownTable::new();
    ldt.acquire(0x40); // a load committed past an older non-performed load
    println!("  load commits out of order; line 0x40 locked down");
    let acked = ldt.incoming_invalidation(0x40);
    println!("  remote invalidation arrives; acknowledged immediately? {acked}");
    let released = ldt.release(0x40);
    println!("  older load performs; lockdown lifts, {released} withheld ack(s) sent");
    println!("  (no other core ever observed the load-load reordering)");
}
