//! Custom kernel: write your own micro-ISA program with `ProgramBuilder`,
//! run it functionally with the emulator, then measure it on the
//! cycle-level core — the workflow for adding a new workload.
//!
//! The kernel is a saxpy-style loop (`y[i] += a * x[i]`) over arrays that
//! overflow the L1, so the prefetcher and MLP matter.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use orinoco::core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco::isa::{ArchReg, Emulator, ProgramBuilder};

fn build() -> Emulator {
    let mut b = ProgramBuilder::new();
    let x = |i: u8| ArchReg::int(i);
    let f = |i: u8| ArchReg::fp(i);
    let (ctr, px, py) = (x(1), x(10), x(11));
    let (a, vx, vy) = (f(0), f(1), f(2));

    b.li(ctr, 20_000);
    let top = b.label();
    b.bind(top);
    b.ld(vx, px, 0); //      vx = x[i]
    b.ld(vy, py, 0); //      vy = y[i]
    b.fmul(vx, vx, a); //    vx = a * x[i]
    b.fadd(vy, vy, vx); //   vy = y[i] + a*x[i]
    b.st(vy, py, 0); //      y[i] = vy
    b.addi(px, px, 8);
    b.addi(py, py, 8);
    b.addi(ctr, ctr, -1);
    b.bne(ctr, ArchReg::ZERO, top);
    b.halt();

    let mut emu = Emulator::new(b.build(), 1 << 21); // 2 MiB
    emu.set_reg(x(10), 0);
    emu.set_reg(py, 1 << 20);
    emu.set_reg(a, 2.5f64.to_bits());
    for i in 0..(1u64 << 17) {
        emu.store_word(i * 8, f64::from(i as u32 % 97).to_bits());
        emu.store_word((1 << 20) + i * 8, 1.0f64.to_bits());
    }
    emu
}

fn main() {
    // 1. Functional check with the architectural oracle.
    let mut emu = build();
    let trace = emu.run();
    let y0 = f64::from_bits(emu.load_word(1 << 20));
    println!("functional run: {} dynamic instructions, y[0] = {y0}", trace.len());
    assert!((y0 - 1.0).abs() < 1e-9); // x[0] = 0, so y[0] stays 1.0

    // 2. Timing runs.
    for (label, cfg) in [
        ("AGE + in-order commit ", CoreConfig::base()),
        (
            "Orinoco issue + commit",
            CoreConfig::base()
                .with_scheduler(SchedulerKind::Orinoco)
                .with_commit(CommitKind::Orinoco),
        ),
    ] {
        let mut core = Core::new(build(), cfg);
        let stats = core.run(1_000_000_000);
        println!(
            "{label}: IPC {:.3}  (L1 hits {}, DRAM {}, mispredicts {})",
            stats.ipc(),
            stats.mem.l1_hits,
            stats.mem.dram_accesses,
            stats.fetch.mispredicts
        );
    }
}
