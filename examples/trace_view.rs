//! Trace view: run the quickstart workload on the full Orinoco core with
//! the instruction-lifecycle tracer armed, dump the trace in every sink
//! format, and print the per-cycle stall taxonomy.
//!
//! Produces, under `target/trace/`:
//!
//! - `quickstart.jsonl`  — one JSON object per pipeline event, for
//!   grepping and diffing (this is the golden-trace format);
//! - `quickstart.konata` — a [Konata](https://github.com/shioyadan/Konata)
//!   pipeline view: open it in the viewer to scrub through fetch →
//!   rename → dispatch → issue → execute → complete → commit lanes and
//!   see unordered commits retire from the middle of the window;
//! - `quickstart.bin`    — the compact 25-byte-per-record binary
//!   encoding for bulk capture.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace_view
//! ```

use orinoco::core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco::workloads::Workload;

fn main() {
    let workload = Workload::MixLike;
    let mut emu = workload.build(42, 1);
    emu.set_step_limit(20_000);
    let cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco);
    let mut core = Core::new(emu, cfg);
    // 1 MiB-ish ring: the one allocation tracing performs. The run is
    // longer than the ring, so the dump is the final window.
    core.enable_tracing(1 << 16);
    let stats = core.run(1_000_000_000).clone();
    let tracer = core.take_tracer().expect("tracing enabled");

    let dir = std::path::Path::new("target/trace");
    std::fs::create_dir_all(dir).expect("create target/trace");
    std::fs::write(dir.join("quickstart.jsonl"), tracer.to_jsonl()).expect("write jsonl");
    std::fs::write(dir.join("quickstart.konata"), tracer.to_konata()).expect("write konata");
    std::fs::write(dir.join("quickstart.bin"), tracer.to_binary()).expect("write binary");

    println!(
        "workload: {workload} | {} insts in {} cycles (IPC {:.3}, {} unordered commits)",
        stats.committed,
        stats.cycles,
        stats.ipc(),
        stats.ooo_commits
    );
    println!(
        "trace: {} events recorded, {} held in the ring ({} overwritten)",
        tracer.total(),
        tracer.len(),
        tracer.dropped()
    );
    println!();
    println!("per-cycle stall attribution (zero-commit cycles):");
    print!("{}", stats.stall_taxonomy.table(stats.cycles));
    println!();
    println!("wrote target/trace/quickstart.{{jsonl,konata,bin}}");
    println!("open the .konata file in the Konata viewer to scrub the pipeline");
}
