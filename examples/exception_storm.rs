//! Exception storm: inject page faults at an aggressive rate and watch
//! the non-collapsible ROB deliver precise exceptions under out-of-order
//! commit — the §3.2 machinery (oldest-finding via the age matrix, squash
//! of younger instructions, re-injection and exact re-execution).
//!
//! The simulator asserts internally that every correct-path instruction
//! commits exactly once, so a completed run *is* the precision proof.
//!
//! Run with:
//! ```text
//! cargo run --release --example exception_storm
//! ```

use orinoco::core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco::workloads::Workload;

fn main() {
    let workload = Workload::StreamLike;
    println!("workload: {workload}, page faults injected at 2000 per million memory ops");
    println!();
    println!("{:<28} {:>8} {:>10} {:>9} {:>9}", "config", "IPC", "exceptions", "replays", "squashed");
    for (label, commit) in [
        ("in-order commit", CommitKind::InOrder),
        ("Orinoco unordered commit", CommitKind::Orinoco),
        ("validation buffer", CommitKind::Vb),
    ] {
        let mut emu = workload.build(7, 1);
        emu.set_step_limit(80_000);
        let mut cfg = CoreConfig::base()
            .with_scheduler(SchedulerKind::Orinoco)
            .with_commit(commit);
        cfg.pagefault_per_million = 2_000;
        let mut core = Core::new(emu, cfg);
        let stats = core.run(1_000_000_000);
        println!(
            "{label:<28} {:>8.3} {:>10} {:>9} {:>9}",
            stats.ipc(),
            stats.exceptions,
            stats.replays,
            stats.squashed
        );
    }
    println!();
    println!(
        "Every run re-executed each faulting instruction exactly once after its\n\
         precise squash (enforced by the core's commit-sequence checksum). With\n\
         unordered commit the fault is taken only once the faulting instruction\n\
         is the *oldest* in flight, so all older instructions have committed —\n\
         the architectural state is precise without a collapsible ROB."
    );
}
