//! Workspace-level integration tests: drive the whole stack through the
//! `orinoco` facade — workload kernels, functional emulator, cycle-level
//! core, matrix schedulers, memory system, statistics.

use orinoco::core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco::isa::{ArchReg, Emulator, ProgramBuilder};
use orinoco::workloads::Workload;

const LIMIT: u64 = 15_000;
const MAX_CYCLES: u64 = 500_000_000;

fn run_limited(w: Workload, cfg: CoreConfig) -> orinoco::core::SimStats {
    let mut emu = w.build(99, 1);
    emu.set_step_limit(LIMIT);
    let mut core = Core::new(emu, cfg);
    core.run(MAX_CYCLES).clone()
}

#[test]
fn facade_exposes_the_whole_stack() {
    // One run touching every crate through the re-exports.
    let stats = run_limited(
        Workload::XzLike,
        CoreConfig::base()
            .with_scheduler(SchedulerKind::Orinoco)
            .with_commit(CommitKind::Orinoco),
    );
    assert_eq!(stats.committed, LIMIT);
    assert!(stats.ipc() > 0.1);
    // circuit model reachable too
    let costs = orinoco::circuit::ArrayModel::pim(96, 96, 4).costs();
    assert!(costs.area_mm2 > 0.0);
}

#[test]
fn architectural_state_matches_pure_emulation() {
    // The pipeline commits exactly what the emulator executes: run the
    // same program both ways and compare final architectural registers.
    let build = || {
        let mut b = ProgramBuilder::new();
        let x = |i: u8| ArchReg::int(i);
        b.li(x(1), 1);
        b.li(x(2), 1);
        b.li(x(3), 24);
        let top = b.label();
        b.bind(top);
        b.add(x(4), x(1), x(2)); // fibonacci
        b.add(x(1), x(2), ArchReg::ZERO);
        b.add(x(2), x(4), ArchReg::ZERO);
        b.st(x(4), x(10), 0);
        b.addi(x(10), x(10), 8);
        b.addi(x(3), x(3), -1);
        b.bne(x(3), ArchReg::ZERO, top);
        b.halt();
        Emulator::new(b.build(), 4096)
    };
    let mut reference = build();
    reference.run();

    let mut core = Core::new(
        build(),
        CoreConfig::base().with_commit(CommitKind::Orinoco),
    );
    let stats = core.run(MAX_CYCLES);
    assert_eq!(stats.committed, reference.executed());
    // fib(26) = 121393
    assert_eq!(reference.reg(ArchReg::int(2)), 121_393);
}

#[test]
fn ooo_commit_never_loses_and_sometimes_wins() {
    let mut wins = 0;
    for w in [Workload::MixLike, Workload::LinkedlistLike, Workload::GemmLike] {
        let ioc = run_limited(w, CoreConfig::base());
        let ooo = run_limited(w, CoreConfig::base().with_commit(CommitKind::Orinoco));
        assert!(
            ooo.ipc() >= ioc.ipc() * 0.99,
            "{w}: ooo {} vs ioc {}",
            ooo.ipc(),
            ioc.ipc()
        );
        if ooo.ipc() > ioc.ipc() * 1.05 {
            wins += 1;
        }
    }
    assert!(wins >= 2, "OoO commit should clearly win on at least two kernels");
}

#[test]
fn ordered_issue_helps_or_matches_on_conflict_heavy_kernels() {
    for w in [Workload::ExchangeLike, Workload::GemmLike] {
        let age = run_limited(w, CoreConfig::base().with_scheduler(SchedulerKind::Age));
        let orinoco =
            run_limited(w, CoreConfig::base().with_scheduler(SchedulerKind::Orinoco));
        assert!(
            orinoco.ipc() >= age.ipc() * 0.97,
            "{w}: orinoco {} vs age {}",
            orinoco.ipc(),
            age.ipc()
        );
    }
}

#[test]
fn upper_bounds_dominate() {
    // VB (with ECL) is the paper's top performer; it should not lose to
    // the baseline anywhere and should beat it overall.
    let mut vb_product = 1.0;
    let mut n = 0;
    for w in [Workload::StreamLike, Workload::MixLike, Workload::LinkedlistLike] {
        let ioc = run_limited(w, CoreConfig::base());
        let vb = run_limited(w, CoreConfig::base().with_commit(CommitKind::Vb));
        assert!(vb.ipc() >= ioc.ipc() * 0.98, "{w}: VB below baseline");
        vb_product *= vb.ipc() / ioc.ipc();
        n += 1;
    }
    assert!(
        vb_product.powf(1.0 / f64::from(n)) > 1.05,
        "VB should show clear average gains on memory-bound kernels"
    );
}

#[test]
fn stats_are_internally_consistent() {
    let s = run_limited(Workload::PerlLike, CoreConfig::base());
    assert_eq!(s.committed, LIMIT);
    assert!(s.issued >= s.committed); // squashed wrong-path work issues too
    assert!(s.cycles > 0);
    assert!(s.rob_occ_sum > 0);
    let breakdown_total = s.dispatch_stalls.full_window_stalls();
    assert!(breakdown_total <= s.cycles, "stall cycles exceed total cycles");
    assert!(s.fetch.branches > 0);
}

#[test]
fn seeds_produce_different_but_valid_runs() {
    let mut a = Workload::HashjoinLike.build(1, 1);
    let mut bld = Workload::HashjoinLike.build(2, 1);
    a.set_step_limit(LIMIT);
    bld.set_step_limit(LIMIT);
    let mut core_a = Core::new(a, CoreConfig::base());
    let sa = core_a.run(MAX_CYCLES).clone();
    let mut core_b = Core::new(bld, CoreConfig::base());
    let sb = core_b.run(MAX_CYCLES).clone();
    assert_eq!(sa.committed, sb.committed);
    // Different data -> different cache behaviour, but same order of
    // magnitude.
    assert!(sa.ipc() > 0.0 && sb.ipc() > 0.0);
}
