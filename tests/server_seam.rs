//! Root-package seam test for the campaign server: the service path
//! (queue → worker fleet → cache) must reproduce a direct `Core` run
//! byte-for-byte, and a campaign chunk routed through the server must
//! match the direct campaign. The per-crate batteries live in
//! `crates/server/tests/`; this guards the cross-crate seam from the
//! facade's side of the workspace.

use orinoco::core::{Core, CoreConfig};
use orinoco::workloads::Workload;
use orinoco_server::{run_one_shot, ConfigSpec, JobResult, JobSpec, Server, SimSpec};

#[test]
fn server_one_shot_and_direct_core_agree() {
    let spec = SimSpec {
        config: ConfigSpec::orinoco_base(),
        workload: Workload::HashjoinLike,
        scale: 1,
        seed: 42,
        max_instrs: 10_000,
        max_cycles: 0,
        progress_cycles: 0,
    };

    // The direct path: same config and emulator, no server machinery.
    let cfg: CoreConfig = spec.config.to_core_config(spec.seed);
    let mut emu = spec.workload.build(spec.seed, spec.scale as u32);
    emu.set_step_limit(spec.max_instrs);
    let direct = Core::new(emu, cfg).run(100_000_000).cycles;

    let one_shot = run_one_shot(&spec).expect("one-shot");
    assert_eq!(one_shot.cycles, direct, "one-shot diverged from a direct Core run");

    let server = Server::new(2);
    let client = server.client();
    match client.run(JobSpec::Sim(spec)).expect("served job") {
        JobResult::Sim(served) => {
            assert_eq!(served, one_shot, "served result diverged from the one-shot path")
        }
        other => panic!("unexpected result {other:?}"),
    }
}
