//! Root-package smoke coverage for the trace-capture / checkpoint /
//! sampled-simulation stack.
//!
//! Tier-1 is `cargo test -q --workspace` (see ROADMAP.md); a bare
//! `cargo test -q` at the root only runs this package, so the
//! cross-crate feature seams that matter most are exercised here too —
//! a plain root test run still smoke-checks capture→replay equivalence,
//! checkpoint/restore and the sampled estimator end to end.

use orinoco::core::sample::{run_sampled, SampleConfig};
use orinoco::core::{capture_program, CommitKind, Core, CoreConfig, FetchSource, ReplayStream};
use orinoco::core::SchedulerKind;
use orinoco::isa::{Emulator, HaltReason};
use orinoco::workloads::{long_program, Workload};

fn orinoco_cfg() -> CoreConfig {
    CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco)
}

#[test]
fn captured_trace_replays_to_identical_timing() {
    let live = Workload::HashjoinLike.build(21, 1);
    let bytes = capture_program(&mut Workload::HashjoinLike.build(21, 1));
    let stream = ReplayStream::from_bytes(bytes).expect("valid capture");

    let live_stats = Core::new(live, orinoco_cfg()).run(200_000_000).clone();
    let mut replay_core = Core::new(stream, orinoco_cfg());
    let replay_stats = replay_core.run(200_000_000).clone();

    // Replay is not an approximation: identical instruction stream in,
    // identical cycle count and commit count out.
    assert_eq!(live_stats.cycles, replay_stats.cycles);
    assert_eq!(live_stats.committed, replay_stats.committed);
    assert!(matches!(replay_core.source(), FetchSource::Replay(_)));
}

#[test]
fn checkpoint_restore_resumes_mid_program() {
    let mut emu = Workload::XzLike.build(4, 1);
    for _ in 0..50_000 {
        emu.step();
    }
    let ck = emu.checkpoint();
    let bytes = ck.to_bytes();
    let restored = orinoco::isa::EmuCheckpoint::from_bytes(&bytes).expect("valid checkpoint");
    let mut resumed = Emulator::restore(emu.program().clone(), &restored);
    let stats = Core::new(resumed.fork_rebased(), orinoco_cfg()).run(200_000_000).clone();
    assert!(stats.committed > 0);
    // The restored emulator finishes the remaining program exactly.
    let rest = resumed.by_ref().count() as u64;
    assert_eq!(resumed.halt_reason(), Some(HaltReason::Halted));
    assert_eq!(stats.committed, rest);
}

#[test]
fn sampled_run_tracks_full_run_ipc() {
    // ~1M instructions so the sampler draws enough intervals (~26) to
    // cover the program's long-period phase structure; at 400k insts the
    // same config under-samples and the error triples.
    let emu = long_program(13, 1_000_000);
    let full = Core::new(emu.fork_rebased(), orinoco_cfg()).run(20_000_000_000).clone();
    let est = run_sampled(emu, orinoco_cfg(), &SampleConfig::new(2_000, 10_000, 40_000));
    let err = (est.est_ipc() - full.ipc()).abs() / full.ipc();
    assert!(
        err < 0.03,
        "sampled IPC {:.4} vs full {:.4}: {:.2}% error",
        est.est_ipc(),
        full.ipc(),
        err * 100.0
    );
    assert_eq!(est.total_insts, full.committed);
    assert!(est.detail_fraction() < 0.5, "sampling simulated too much in detail");
}
