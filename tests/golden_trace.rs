//! Golden-trace regression tests: the lifecycle trace of two canonical
//! runs — the `quickstart` example's Orinoco configuration and an
//! `exception_storm` window — is checked in as JSONL under
//! `tests/golden/` and byte-diffed on every run. Any change to pipeline
//! timing, event ordering or the trace encoding shows up as a diff.
//!
//! Regenerate the blessed files after an *intentional* change with:
//!
//! ```text
//! ORINOCO_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! and review the diff like any other code change.

use orinoco::core::{CommitKind, Core, CoreConfig, SchedulerKind};
use orinoco::workloads::Workload;
use orinoco_verif::check_lifecycle;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

const MAX_CYCLES: u64 = 100_000_000;

/// The quickstart example's Orinoco core on a short `mix_like` prefix,
/// traced end to end (ring sized so nothing is overwritten).
fn quickstart_core() -> Core {
    let mut emu = Workload::MixLike.build(42, 1);
    emu.set_step_limit(300);
    let cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco);
    let mut core = Core::new(emu, cfg);
    core.enable_tracing(1 << 16);
    core
}

fn quickstart_trace() -> String {
    let mut core = quickstart_core();
    core.run(MAX_CYCLES);
    let t = core.take_tracer().expect("tracing enabled");
    assert_eq!(t.dropped(), 0, "quickstart ring sized to hold the whole run");
    t.to_jsonl()
}

/// The exception-storm example's configuration with the fault rate turned
/// up so the bounded 512-record window is guaranteed to straddle precise
/// squash/refetch episodes.
fn exception_storm_window() -> String {
    let mut emu = Workload::StreamLike.build(7, 1);
    emu.set_step_limit(3_000);
    let mut cfg = CoreConfig::base()
        .with_scheduler(SchedulerKind::Orinoco)
        .with_commit(CommitKind::Orinoco);
    cfg.pagefault_per_million = 20_000;
    let mut core = Core::new(emu, cfg);
    core.enable_tracing(512);
    core.run(MAX_CYCLES);
    let t = core.take_tracer().expect("tracing enabled");
    assert!(t.dropped() > 0, "window should be a strict suffix of the run");
    t.to_jsonl()
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compares `actual` against the blessed file, or rewrites the file
/// when `ORINOCO_BLESS` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("ORINOCO_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing blessed trace {}: {e}\nregenerate with ORINOCO_BLESS=1 cargo test --test golden_trace",
            path.display()
        )
    });
    if want != actual {
        let first = want
            .lines()
            .zip(actual.lines())
            .position(|(w, a)| w != a)
            .unwrap_or_else(|| want.lines().count().min(actual.lines().count()));
        let show = |s: &str| s.lines().nth(first).unwrap_or("<end of trace>").to_owned();
        panic!(
            "{name} diverges from the blessed golden trace at line {} \
             ({} golden lines, {} actual):\n  golden: {}\n  actual: {}\n\
             if the timing change is intentional, re-bless with \
             ORINOCO_BLESS=1 cargo test --test golden_trace",
            first + 1,
            want.lines().count(),
            actual.lines().count(),
            show(&want),
            show(actual),
        );
    }
}

#[test]
fn quickstart_trace_matches_golden() {
    let trace = quickstart_trace();
    // Sanity on shape before diffing: a full lifecycle per instruction,
    // including unordered commits (this is the Orinoco configuration).
    for ev in ["fetch", "dispatch", "issue", "complete", "commit", "stall"] {
        assert!(
            trace.contains(&format!(r#""event":"{ev}""#)),
            "quickstart trace missing {ev} events"
        );
    }
    assert_golden("quickstart.jsonl", &trace);
}

#[test]
fn exception_storm_window_matches_golden() {
    let window = exception_storm_window();
    assert!(
        window.contains(r#""event":"squash""#),
        "storm window should straddle at least one precise-exception squash"
    );
    assert_golden("exception_storm.jsonl", &window);
}

/// The two-core lockdown scenario (DESIGN.md §11): each core holds a
/// lockdown on a line the other stores to, so the hub's invalidations —
/// genuine cross-core traffic — land inside open windows and their acks
/// are withheld. The concatenated per-core lifecycle trace is blessed.
fn lockdown_2core_trace() -> String {
    let mut sys = orinoco_verif::syslitmus::lockdown_demo_system();
    sys.run(500_000);
    for c in 0..2 {
        let t = sys.core(c).tracer().expect("tracing enabled");
        assert_eq!(t.dropped(), 0, "core {c} ring sized to hold the whole run");
    }
    sys.trace_jsonl()
}

#[test]
fn two_core_lockdown_trace_matches_golden() {
    let trace = lockdown_2core_trace();
    // Both cores contribute tagged lines, and both attribute stall cycles
    // to a lockdown holding a remote invalidation's ack — the satellite
    // acceptance: a real cross-core hold, visible in the lifecycle trace
    // of *both* the reader (withheld ack) and the writer (stalled drain).
    for c in 0..2 {
        assert!(
            trace.contains(&format!(r#"{{"core":{c},"#)),
            "no trace lines from core {c}"
        );
        assert!(
            trace
                .lines()
                .any(|l| l.starts_with(&format!(r#"{{"core":{c},"#))
                    && l.ends_with(r#""event":"stall","cause":"lockdown-held"}"#)),
            "core {c} taxonomy never shows a lockdown-held stall"
        );
    }
    assert_golden("lockdown_2core.jsonl", &trace);
}

/// The traces themselves are deterministic — two identical runs produce
/// byte-identical JSONL, which is what makes the golden diff meaningful.
#[test]
fn traces_are_byte_deterministic() {
    assert_eq!(quickstart_trace(), quickstart_trace());
    assert_eq!(exception_storm_window(), exception_storm_window());
    assert_eq!(lockdown_2core_trace(), lockdown_2core_trace());
}

/// The blessed quickstart trace passes the lifecycle-invariant checker
/// and exhibits genuine unordered commit — the golden file documents the
/// behaviour the paper claims.
#[test]
fn quickstart_golden_is_lifecycle_clean_and_unordered() {
    let mut core = quickstart_core();
    core.run(MAX_CYCLES);
    let t = core.take_tracer().expect("tracing enabled");
    let check = check_lifecycle(t.records());
    assert!(check.clean(), "violations: {:?}", check.violations);
    assert!(check.commits > 0);
    assert!(
        check.unordered_commits > 0,
        "quickstart's Orinoco config should commit out of order"
    );
}

/// Sensitivity: a single injected SPEC-bit flip in the commit scheduler
/// must change the trace (so the byte-diff fails) or crash the pipeline's
/// own invariants — it cannot slip through the golden test unseen.
#[test]
fn golden_diff_catches_spec_flip_injection() {
    let clean = quickstart_trace();
    let injected = orinoco_verif::oracle::with_quiet_panics(|| {
        catch_unwind(AssertUnwindSafe(|| {
            let mut core = quickstart_core();
            core.inject_spec_flip(1);
            core.run(MAX_CYCLES);
            assert!(core.spec_flip_fired(), "flip ordinal 1 must fire");
            core.take_tracer().expect("tracing enabled").to_jsonl()
        }))
    });
    // An Err means the pipeline invariants caught the flip even earlier.
    if let Ok(trace) = injected {
        assert_ne!(
            trace, clean,
            "SPEC flip left the lifecycle trace byte-identical"
        );
    }
}
