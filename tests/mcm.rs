//! Multi-core TSO acceptance: the axiomatic MCM checker over a seeded
//! 1000-program campaign of 2–4-core generated programs, the
//! dropped-invalidation fault that proves the checker is load-bearing,
//! and the end-to-end cross-core lockdown story (a committed load's
//! lockdown withholding a *genuine* remote invalidation's ack, visible
//! in the lifecycle trace).

use orinoco_util::pool::default_jobs;
use orinoco_verif::mcm::mcm_campaign;
use orinoco_verif::syslitmus::{cross_core_lockdown_demo, run_battery};

#[test]
fn thousand_program_campaign_is_clean_and_the_checker_is_load_bearing() {
    let outcome = mcm_campaign(1000, 42, default_jobs(), |_, _| {});
    assert_eq!(outcome.programs_run, 1000);
    assert!(
        outcome.violations.is_empty(),
        "TSO violations on a clean system: {:?}",
        outcome.violations
    );
    // The sweep must actually exercise the multicore machinery, not pass
    // vacuously: cross-core installs and lockdown-withheld acks both
    // appear.
    assert!(outcome.total_events > 1000, "too few shared events: {}", outcome.total_events);
    assert!(outcome.total_installs > 100, "too few installs: {}", outcome.total_installs);
    assert!(outcome.total_withheld > 0, "no lockdown ever withheld an ack");
    // The same checker must *fail* when one invalidation is dropped on
    // the floor — otherwise a silent-pass bug could hide anything.
    assert!(outcome.injection.dropped > 0, "fault never armed");
    assert!(outcome.injection.clean_ok, "control run not clean: {}", outcome.injection.detail);
    assert!(
        outcome.injection.fault_caught,
        "dropped invalidation went unnoticed: {}",
        outcome.injection.detail
    );
    assert!(outcome.passed());
}

#[test]
fn genuine_cross_core_invalidation_is_held_by_lockdown() {
    let d = cross_core_lockdown_demo();
    assert!(d.invalidations_sent > 0, "no real invalidation traffic: {d:?}");
    assert_eq!(d.invalidations_dropped, 0, "no fault is armed here: {d:?}");
    assert!(d.withheld > 0, "the lockdown never withheld an ack: {d:?}");
    assert!(d.reader_lockdown_stalls > 0, "reader taxonomy missing lockdown-held: {d:?}");
    assert!(d.writer_lockdown_stalls > 0, "writer taxonomy missing lockdown-held: {d:?}");
    assert!(d.traced, "no lockdown-held stall record in the lifecycle trace: {d:?}");
    assert!(d.store_installed, "the held store never became visible: {d:?}");
    assert!(d.tso_clean, "the episode violated the TSO axioms: {d:?}");
    assert!(d.holds());
}

#[test]
fn litmus_battery_holds_on_real_systems() {
    for v in run_battery(7) {
        assert!(
            v.holds(),
            "{}: violation {:?}, missing outcomes {:?} (saw {:?})",
            v.name,
            v.violation,
            v.missing,
            v.outcomes
        );
    }
}
