//! Workspace-level TSO litmus suite: the lockdown matrix must reject
//! every TSO-forbidden outcome while permitting every TSO-allowed one,
//! across the classic MP / SB / LB patterns (§3.3), and removing the
//! lockdown protection must expose the forbidden message-passing
//! outcome — proving the matrix is load-bearing.

use orinoco_verif::litmus;

/// MP: `r_flag=1, r_data=0` is forbidden under TSO. The lockdown matrix
/// is the mechanism that blocks it: with lockdown disabled the forbidden
/// outcome becomes reachable.
#[test]
fn mp_forbidden_outcome_rejected_allowed_permitted() {
    let v = litmus::run(&litmus::mp());
    assert!(v.forbidden_blocked, "MP forbidden outcome reachable: {:?}", v.outcomes);
    assert!(v.all_allowed_seen, "MP allowed outcome missing: {:?}", v.outcomes);
    assert!(
        v.outcomes_unprotected.contains(&vec![1, 0]),
        "disabling lockdown must expose the forbidden MP outcome: {:?}",
        v.outcomes_unprotected
    );
}

/// SB: all four outcomes are TSO-allowed; the machine must produce the
/// store-buffering signature `(0,0)` and the lockdown machinery must not
/// suppress any allowed outcome (no false positives).
#[test]
fn sb_all_allowed_outcomes_permitted() {
    let v = litmus::run(&litmus::sb());
    assert!(v.all_allowed_seen, "SB allowed outcome missing: {:?}", v.outcomes);
    assert!(v.outcomes.contains(&vec![0, 0]), "store-buffering outcome suppressed");
    assert_eq!(v.outcomes.len(), 4);
}

/// LB: `(1,1)` is forbidden under TSO (no load→store reordering).
#[test]
fn lb_forbidden_outcome_rejected() {
    let v = litmus::run(&litmus::lb());
    assert!(v.forbidden_blocked, "LB forbidden outcome reachable: {:?}", v.outcomes);
    assert!(v.all_allowed_seen, "LB allowed outcome missing: {:?}", v.outcomes);
}

/// Full suite verdict, as the `verif litmus` CLI computes it.
#[test]
fn full_suite_holds() {
    for v in litmus::run_all() {
        assert!(v.holds(), "{} failed: {v:?}", v.name);
        assert!(v.matrix_load_bearing, "{} lockdown not load-bearing: {v:?}", v.name);
    }
}

/// The cycle-level core exhibits the §3.3 protocol end to end: a load
/// commits over an older non-performed load, its line locks down, a
/// remote invalidation's ack is withheld, and the ack flows once the
/// older load performs.
#[test]
fn cycle_level_lockdown_withholds_invalidation_acks() {
    let demo = litmus::real_core_lockdown_demo();
    assert!(demo.lockdown_engaged, "no lockdown engaged: {demo:?}");
    assert!(demo.ack_withheld, "invalidation ack not withheld: {demo:?}");
    assert!(demo.ack_after_release, "ack did not flow after release: {demo:?}");
}
